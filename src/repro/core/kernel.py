"""The shared join-kernel core every engine composes.

The four execution models — the fast-CPU integrated
:class:`~repro.core.engine.JoinEngine`, the bursty-arrival
:class:`~repro.core.async_engine.AsyncJoinEngine`, the queue-fronted
:class:`~repro.core.slowcpu.SlowCpuEngine`, and the shared-queue
:class:`~repro.core.multiquery.SharedQueueSystem` — all drive the same
per-tuple state machine: *expire* what aged out of the window, *probe*
the opposite side for matches, then *insert* the newcomer (which may
*evict* a resident or reject the newcomer outright).  Historically each
engine re-implemented that bookkeeping (policy notifications, the
per-side drop ledger, trace emission), and the copies drifted.

:class:`JoinKernel` owns the mechanism once:

* ``observe``   — broadcast an arrival to the policies that consume it;
* ``expire``    — window expiry with ledger/notify/trace bookkeeping;
* ``probe``     — match counting plus ``join_output`` trace credit;
* ``insert``    — the admission contest: admit, displace a victim, or
  reject, with every side effect accounted;
* ``shed_surplus`` — evict down to a shrunken budget (time-varying
  memory, paper Section 3.3.1).

Engines keep what is genuinely theirs: output counting and warmup
(which differ per processing model), survival records (fast engine
only), queue management (modular engines), and the inlined fast loop of
:meth:`~repro.core.engine.JoinEngine._run_fast`, which bypasses the
kernel entirely for throughput — a regression test pins it to the
kernel-driven general loop.

Every kernel instance carries one per-side drop ledger in the shape of
:func:`~repro.core.results.empty_side_drop_counts`; engines read
``kernel.drop_counts`` (or the :meth:`JoinKernel.drops` breakdown) when
assembling results, so the reason/field names cannot drift between
engines again.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from ..obs.trace import (
    EVENT_ADMIT,
    EVENT_DROP,
    EVENT_EVICT,
    EVENT_EXPIRE,
    EVENT_JOIN_OUTPUT,
    REASON_BUDGET,
    REASON_DISPLACED,
    REASON_REJECTED,
    REASON_WINDOW,
    TraceEvent,
)
from .memory import JoinMemory, TupleRecord
from .policies.base import EvictionPolicy, arrival_observers
from .results import (
    DROP_EVICTED,
    DROP_EXPIRED,
    DROP_REJECTED,
    DropBreakdown,
    empty_side_drop_counts,
)

__all__ = ["JoinKernel"]


class JoinKernel:
    """One join memory plus its policies, driven through narrow hooks.

    Parameters
    ----------
    memory:
        The :class:`~repro.core.memory.JoinMemory` under management.
    policy_r / policy_s:
        Per-side eviction policies (the same instance twice for a
        variable shared pool, ``None`` for no shedding — the EXACT
        configuration, where overflow raises ``overflow_error``).
    tracer:
        Optional live tracer (already collapsed via
        :func:`~repro.obs.trace.tracing_or_none`); ``None`` keeps every
        emission off the hot path.
    tag:
        Optional query label stamped on every trace event (the
        multi-query system names its operators this way).
    overflow_error:
        Exception type raised when a policy-less memory overflows
        (engines keep their historical types, e.g.
        :class:`~repro.core.engine.CapacityExceededError`).
    """

    __slots__ = (
        "memory",
        "policy_r",
        "policy_s",
        "observers",
        "tracer",
        "tag",
        "overflow_error",
        "drop_counts",
    )

    def __init__(
        self,
        memory: JoinMemory,
        policy_r: Optional[EvictionPolicy],
        policy_s: Optional[EvictionPolicy],
        *,
        tracer=None,
        tag: Optional[str] = None,
        overflow_error: type = RuntimeError,
    ) -> None:
        self.memory = memory
        self.policy_r = policy_r
        self.policy_s = policy_s
        instances = tuple(
            {id(p): p for p in (policy_r, policy_s) if p is not None}.values()
        )
        self.observers = arrival_observers(instances)
        self.tracer = tracer
        self.tag = tag
        self.overflow_error = overflow_error
        self.drop_counts = empty_side_drop_counts()

    # ------------------------------------------------------------------
    # wiring helpers
    # ------------------------------------------------------------------
    def policy_for(self, stream: str) -> Optional[EvictionPolicy]:
        return self.policy_r if stream == "R" else self.policy_s

    def drops(self) -> DropBreakdown:
        """The ledger collapsed across sides (for result assembly)."""
        return DropBreakdown.from_side_counts(self.drop_counts)

    def side_drops(self, stream: str, reason: str) -> int:
        return self.drop_counts[stream][reason]

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Serialisable join state: memory contents plus the drop ledger."""
        return {
            "memory": self.memory.snapshot(),
            "drops": {
                side: dict(reasons) for side, reasons in self.drop_counts.items()
            },
        }

    def restore(self, state: dict) -> list[TupleRecord]:
        """Rebuild from :meth:`snapshot`; returns records in admission order.

        The drop ledger is updated *in place* — engines alias
        ``kernel.drop_counts`` into their result assembly, so rebinding
        the dict would silently decouple the two.  The returned list
        merges both sides into global admission order (stable by arrival,
        R before S on ties — the engines process each tick's R batch
        first), which is what shared-pool policies need to rebuild their
        structures.
        """
        r_records, s_records = self.memory.restore(state["memory"])
        for side, reasons in self.drop_counts.items():
            saved = state["drops"].get(side, {})
            for reason in reasons:
                reasons[reason] = saved.get(reason, 0)
        merged: list[TupleRecord] = []
        i = j = 0
        while i < len(r_records) and j < len(s_records):
            if r_records[i].arrival <= s_records[j].arrival:
                merged.append(r_records[i])
                i += 1
            else:
                merged.append(s_records[j])
                j += 1
        merged.extend(r_records[i:])
        merged.extend(s_records[j:])
        return merged

    # ------------------------------------------------------------------
    # the hooks
    # ------------------------------------------------------------------
    def observe(self, stream: str, key, now: int) -> None:
        """Announce one arrival to every policy that consumes arrivals."""
        for policy in self.observers:
            policy.observe_arrival(stream, key, now)

    def observe_batch(self, stream: str, keys, now: int) -> None:
        """Announce a same-tick arrival batch (policy-major order).

        Equivalent to :meth:`observe` per key for the single-observer
        case; with several observers the broadcast is policy-major
        (each observer sees the whole batch in arrival order), which no
        shipped policy distinguishes from key-major.
        """
        for policy in self.observers:
            observe = policy.observe_arrival
            for key in keys:
                observe(stream, key, now)

    def expire(
        self,
        horizon: int,
        now: int,
        *,
        reason: str = REASON_WINDOW,
        side: Optional[str] = None,
    ) -> list[TupleRecord]:
        """Expire residents with ``arrival <= horizon`` and account them.

        ``side`` restricts expiry to one stream memory (count-based
        windows age each stream by its own tuple counter); the default
        sweeps both sides.  Returns the expired records so callers can
        do engine-specific bookkeeping (survival records).
        """
        source = self.memory if side is None else self.memory.side(side)
        expired = source.expire_until(horizon)
        if expired:
            self.retire(expired, now, reason=reason)
        return expired

    def retire(
        self, records: Iterable[TupleRecord], now: int, *, reason: str = REASON_WINDOW
    ) -> None:
        """Ledger/notify/trace bookkeeping for already-expired records."""
        drop_counts = self.drop_counts
        tracer = self.tracer
        for record in records:
            policy = self.policy_r if record.stream == "R" else self.policy_s
            if policy is not None:
                policy.on_remove(record, now, expired=True)
            drop_counts[record.stream][DROP_EXPIRED] += 1
            if tracer is not None:
                tracer.emit(TraceEvent(
                    now, record.stream, record.key, EVENT_EXPIRE,
                    record.arrival, record.priority, reason, self.tag,
                ))

    def probe(self, stream: str, key, now: int) -> int:
        """Matches of ``key`` against the opposite side's residents.

        Join output is credited to the *resident* partner in the trace —
        the tuple whose retention earned the pair; the probing newcomer
        is implicit (opposite stream, at ``now``).
        """
        other = self.memory.other_side(stream)
        matches = other.match_count(key)
        tracer = self.tracer
        if tracer is not None and matches:
            for partner in other.matches(key):
                tracer.emit(TraceEvent(
                    now, partner.stream, key, EVENT_JOIN_OUTPUT,
                    partner.arrival, partner.priority, None, self.tag,
                ))
        return matches

    def probe_batch(self, stream: str, keys, now: int) -> int:
        """Total matches of a same-tick probe batch (bulk :meth:`probe`).

        Within one side's batch no probe can see another batch member's
        insertion (probes read the *opposite* side), so summing per-key
        counts over the whole batch is exact.  Without a tracer this is
        one bulk dict sweep over the per-key group index; with one, it
        falls back to per-key probes so join-output credit events keep
        their order.
        """
        if self.tracer is not None:
            total = 0
            for key in keys:
                total += self.probe(stream, key, now)
            return total
        return self.memory.other_side(stream).match_total(keys)

    def insert_batch(
        self, stream: str, keys, now: int
    ) -> list[tuple[bool, Optional[TupleRecord]]]:
        """Offer a same-tick batch of newcomers to the memory.

        Policy-less sides take the bulk lane: one capacity check for the
        whole chunk, then :meth:`StreamMemory.add_batch`.  If the chunk
        does not fit, the tuples that do fit are admitted first and the
        overflow raises at exactly the tuple where the per-tuple path
        would have raised (same error type and message).  Sides with a
        policy, or traced runs, fall back to per-tuple :meth:`insert` —
        eviction contests and event order are inherently sequential.
        """
        memory = self.memory
        policy = self.policy_r if stream == "R" else self.policy_s
        if policy is None and self.tracer is None:
            side = memory.side(stream)
            count = len(keys)
            free = (
                memory.capacity - memory.total_size
                if memory.variable
                else memory.capacity // 2 - side.size
            )
            if free < count:
                if free > 0:
                    side.add_batch(
                        [TupleRecord(stream, now, key) for key in keys[:free]]
                    )
                raise self.overflow_error(
                    f"memory overflow at t={now} with no shedding policy "
                    f"(capacity {memory.capacity})"
                )
            records = [TupleRecord(stream, now, key) for key in keys]
            side.add_batch(records)
            return [(True, None) for _ in records]
        outcomes = []
        for key in keys:
            outcomes.append(self.insert(TupleRecord(stream, now, key), now))
        return outcomes

    def insert(
        self, record: TupleRecord, now: int
    ) -> tuple[bool, Optional[TupleRecord]]:
        """Offer ``record`` to the memory; run the eviction contest.

        Returns ``(admitted, victim)``:

        * ``(True, None)``   — admitted into free space;
        * ``(True, victim)`` — admitted after displacing ``victim``;
        * ``(False, None)``  — rejected (the newcomer was the weakest).

        All ledger counts, policy notifications, and trace events are
        emitted here; callers only need the outcome for engine-specific
        accounting (survival records, scalar counters).
        """
        memory = self.memory
        stream = record.stream
        policy = self.policy_r if stream == "R" else self.policy_s
        tracer = self.tracer

        if not memory.needs_eviction(stream):
            memory.admit(record)
            if policy is not None:
                policy.on_admit(record, now)
            if tracer is not None:
                tracer.emit(TraceEvent(
                    now, stream, record.key, EVENT_ADMIT,
                    record.arrival, record.priority, None, self.tag,
                ))
            return True, None

        if policy is None:
            raise self.overflow_error(
                f"memory overflow at t={now} with no shedding policy "
                f"(capacity {memory.capacity})"
            )

        victim = policy.choose_victim(record, now)
        if victim is None:
            self.drop_counts[stream][DROP_REJECTED] += 1
            if tracer is not None:
                tracer.emit(TraceEvent(
                    now, stream, record.key, EVENT_DROP,
                    record.arrival, record.priority, REASON_REJECTED, self.tag,
                ))
            return False, None

        if not victim.alive:
            raise RuntimeError(
                f"policy {policy.name} returned a non-resident victim {victim!r}"
            )
        memory.remove(victim)
        victim_policy = self.policy_r if victim.stream == "R" else self.policy_s
        (victim_policy or policy).on_remove(victim, now, expired=False)
        self.drop_counts[victim.stream][DROP_EVICTED] += 1
        if tracer is not None:
            tracer.emit(TraceEvent(
                now, victim.stream, victim.key, EVENT_EVICT,
                victim.arrival, victim.priority, REASON_DISPLACED, self.tag,
            ))

        memory.admit(record)
        policy.on_admit(record, now)
        if tracer is not None:
            tracer.emit(TraceEvent(
                now, stream, record.key, EVENT_ADMIT,
                record.arrival, record.priority, None, self.tag,
            ))
        return True, victim

    def shed_surplus(
        self, now: int, *, on_departure: Optional[Callable] = None
    ) -> list[TupleRecord]:
        """Evict residents until the (shrunk) budget is respected.

        Used when a time-varying memory schedule lowers the budget;
        victims were last present for the previous tick's probes, so
        ``on_departure(victim)`` (if given) should record ``now - 1``.
        """
        memory = self.memory
        victims: list[TupleRecord] = []
        streams = ("R",) if memory.variable else ("R", "S")
        for stream in streams:
            policy = self.policy_for(stream)
            while memory.surplus(stream) > 0:
                if policy is None:
                    raise self.overflow_error(
                        f"budget shrank below contents at t={now} with no policy"
                    )
                victim = policy.weakest_resident(stream, now)
                if victim is None:  # pragma: no cover - surplus implies residents
                    raise RuntimeError("surplus reported but no resident found")
                memory.remove(victim)
                victim_policy = self.policy_for(victim.stream) or policy
                victim_policy.on_remove(victim, now, expired=False)
                self.drop_counts[victim.stream][DROP_EVICTED] += 1
                if self.tracer is not None:
                    # Budget sheds happen *before* tick `now`'s probes.
                    self.tracer.emit(TraceEvent(
                        now, victim.stream, victim.key, EVENT_EVICT,
                        victim.arrival, victim.priority, REASON_BUDGET, self.tag,
                    ))
                if on_departure is not None:
                    on_departure(victim)
                victims.append(victim)
        return victims
