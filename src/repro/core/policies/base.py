"""Eviction-policy interface for semantic load shedding.

A policy decides, when the join memory is full and a new tuple arrives,
whether to reject the newcomer or which resident tuple to displace.  The
engine drives the protocol:

1. every arrival is announced via :meth:`EvictionPolicy.observe_arrival`
   (statistics maintenance — both streams, regardless of side);
2. if the newcomer's side has room it is admitted and
   :meth:`EvictionPolicy.on_admit` fires;
3. otherwise :meth:`EvictionPolicy.choose_victim` returns a resident
   tuple to evict (the engine then fires ``on_remove`` for the victim and
   ``on_admit`` for the newcomer) or ``None`` to drop the newcomer;
4. expiring tuples fire :meth:`EvictionPolicy.on_remove` too.

With fixed allocation the engine instantiates one policy per stream side;
with variable allocation a single policy instance governs the shared pool
and may return victims from either side.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Hashable, Iterable, Optional, Sequence

from ..memory import JoinMemory, TupleRecord


class EvictionPolicy(ABC):
    """Base class for join-memory admission/eviction strategies."""

    #: Human-readable policy name, set by subclasses ("RAND", "PROB", ...).
    name: str = "?"

    #: Whether this policy consumes :meth:`observe_arrival` broadcasts.
    #: Engines skip the per-arrival call for policies that leave this
    #: False (or don't override ``observe_arrival`` at all) — the hot
    #: path must not pay for a no-op notification.  Instances may
    #: override the class value (PROB with frozen estimators sets it
    #: False even though the class overrides ``observe_arrival``).
    observes_arrivals: bool = True

    def __init__(self) -> None:
        self._memory: Optional[JoinMemory] = None

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def bind(self, memory: JoinMemory) -> None:
        """Attach the policy to the join memory it governs.

        Called once by the engine before the run starts; policies must not
        be shared across concurrent runs.
        """
        if self._memory is not None and self._memory is not memory:
            raise RuntimeError(f"{self.name} policy is already bound to another memory")
        self._memory = memory

    @property
    def memory(self) -> JoinMemory:
        if self._memory is None:
            raise RuntimeError(f"{self.name} policy used before bind()")
        return self._memory

    # ------------------------------------------------------------------
    # notifications (optional overrides)
    # ------------------------------------------------------------------
    def observe_arrival(self, stream: str, key: Hashable, now: int) -> None:
        """Called for *every* arrival on both streams (statistics hook)."""

    def on_admit(self, record: TupleRecord, now: int) -> None:
        """Called after a tuple is admitted to memory."""

    def on_remove(self, record: TupleRecord, now: int, *, expired: bool) -> None:
        """Called after a tuple leaves memory (eviction or expiry)."""

    # ------------------------------------------------------------------
    # checkpointing (optional overrides)
    # ------------------------------------------------------------------
    def snapshot_state(self):
        """Serialisable private state for checkpoint/restore.

        Stateless policies (LIFE, FIFO — everything they need lives in
        the memory structures) return ``None``.  Stateful policies must
        return enough to make a restored run bit-identical to an
        uninterrupted one: RAND captures its RNG state, PROB its online
        estimators (the heap is rebuilt from the resident records), ARM
        its arrival trackers.
        """
        return None

    def restore_state(self, state, records: Sequence[TupleRecord]) -> None:
        """Rebuild private state after the memory was restored.

        ``records`` are the resident tuples this policy governs, in
        admission order, freshly rebuilt by
        :meth:`~repro.core.memory.StreamMemory.restore` — any internal
        structure referencing record objects (PROB's heap) must be
        rebuilt against them, not against pickled copies.
        """

    # ------------------------------------------------------------------
    # the decisions
    # ------------------------------------------------------------------
    @abstractmethod
    def choose_victim(self, candidate: TupleRecord, now: int) -> Optional[TupleRecord]:
        """Pick the tuple to displace in favour of ``candidate``.

        Only called when ``candidate``'s side is full.  The return value
        must be a resident tuple from one of
        ``memory.eviction_candidates(candidate.stream)``, or ``None`` to
        reject the candidate instead.
        """

    def weakest_resident(self, stream: str, now: int) -> Optional[TupleRecord]:
        """The resident this policy would shed first (no newcomer involved).

        Used when the memory budget *shrinks* at runtime (the paper notes
        PROB/LIFE "can easily deal with varying memory and window sizes",
        Section 3.3).  ``stream`` selects the pool under fixed allocation
        and is ignored for a shared pool.  Returns ``None`` only when the
        relevant pool is empty.
        """
        raise NotImplementedError(
            f"{self.name} does not support shrinking memory budgets"
        )


def arrival_observers(
    policies: Iterable[Optional["EvictionPolicy"]],
) -> Sequence["EvictionPolicy"]:
    """The subset of ``policies`` that actually consume arrival events.

    A policy is an observer iff it overrides
    :meth:`EvictionPolicy.observe_arrival` *and* its
    ``observes_arrivals`` flag is truthy.  Engines and the kernel build
    their broadcast list through this one helper so the filtering rule
    cannot drift.
    """
    return tuple(
        p
        for p in policies
        if p is not None
        and type(p).observe_arrival is not EvictionPolicy.observe_arrival
        and p.observes_arrivals
    )


def later_arrival_wins(
    resident_priority: float,
    resident_arrival: int,
    candidate_priority: float,
    candidate_arrival: int,
) -> bool:
    """Shared tie rule: evict the resident iff it is strictly worse.

    The paper breaks priority ties "by giving higher priority to the tuple
    that arrived later", so an equal-priority resident (which necessarily
    arrived no later than the candidate) loses.
    """
    if resident_priority != candidate_priority:
        return resident_priority < candidate_priority
    return resident_arrival < candidate_arrival
