"""PROB: the paper's headline heuristic (Section 3.3.1).

A tuple's priority is the probability that a *partner* arrives on the
other stream: for ``r(i)`` it is ``p_S(r(i))``.  When the memory is full,
the lowest-priority tuple (among residents and the newcomer) is shed;
priority ties go to the later arrival.  Because priorities are static per
key, a lazy min-heap gives O(log M) decisions.
"""

from __future__ import annotations

import copy
import heapq
from itertools import count
from typing import Mapping, Optional

from ...stats.frequency import FrequencyEstimator, StaticFrequencyTable
from ..memory import TupleRecord
from .base import EvictionPolicy, later_arrival_wins


class ProbPolicy(EvictionPolicy):
    """Partner-arrival-probability eviction (PROB; PROBV on a shared pool).

    Parameters
    ----------
    estimators:
        Mapping from stream name (``"R"``/``"S"``) to the frequency
        estimator of *that stream's own* arrival distribution.  A resident
        R-tuple is scored with the S estimator and vice versa, matching
        the paper's ``p_S(r(i))`` / ``p_R(s(i))``.

    update_estimators:
        When True, every arrival on either stream is fed to its own
        stream's estimator (for online statistics such as
        :class:`~repro.stats.ewma.EwmaFrequencyEstimator` or the sketch
        estimators).  The paper's experiments keep the estimators static
        (the default).

    Notes
    -----
    With online estimators the priority cached at admission time is used
    for eviction ordering (refreshing the heap on every estimate change
    would be prohibitively expensive and the paper does not do it);
    candidates are always scored with the current estimate.
    """

    name = "PROB"

    def __init__(
        self,
        estimators: Mapping[str, FrequencyEstimator],
        *,
        update_estimators: bool = False,
    ) -> None:
        super().__init__()
        missing = {"R", "S"} - set(estimators)
        if missing:
            raise ValueError(f"estimators missing for streams: {sorted(missing)}")
        self._estimators = dict(estimators)
        self._update_estimators = update_estimators
        # Lazy min-heap of (priority, arrival, seq, record).  Dead
        # entries (expired/evicted residents) are dropped lazily on pop
        # and compacted in bulk once they outnumber the live ones —
        # without compaction, high-priority tuples that *expire* leave
        # entries that never reach the top, and an unbounded streaming
        # run accumulates them without limit.
        self._heap: list[tuple[float, int, int, TupleRecord]] = []
        self._seq = count()
        self._dead = 0
        # Static tables never change, so partner probabilities collapse
        # to one dict lookup per decision.  Online estimators (or
        # update_estimators=True) must keep going through the estimator.
        if not update_estimators and all(
            isinstance(est, StaticFrequencyTable) for est in self._estimators.values()
        ):
            self._partner_probs: Optional[dict] = {
                "R": self._estimators["S"].as_dict(),
                "S": self._estimators["R"].as_dict(),
            }
            # A wholesale table update (re-baselining from an online
            # estimator or a drift detector) invalidates the cache;
            # rebuild it instead of serving stale probabilities.
            for est in self._estimators.values():
                est.subscribe(self._refresh_partner_probs)
        else:
            self._partner_probs = None
        # The engine skips the per-tick observe_arrival broadcast for
        # policies that declare they don't consume it.
        self.observes_arrivals = update_estimators

    def _refresh_partner_probs(self) -> None:
        self._partner_probs = {
            "R": self._estimators["S"].as_dict(),
            "S": self._estimators["R"].as_dict(),
        }

    def observe_arrival(self, stream: str, key, now: int) -> None:
        if self._update_estimators:
            self._estimators[stream].observe(key)

    def partner_probability(self, record: TupleRecord) -> float:
        """Probability that a partner for ``record`` arrives next tick."""
        probs = self._partner_probs
        if probs is not None:
            return probs[record.stream].get(record.key, 0.0)
        other = "S" if record.stream == "R" else "R"
        return self._estimators[other].probability(record.key)

    def on_admit(self, record: TupleRecord, now: int) -> None:
        record.priority = self.partner_probability(record)
        heapq.heappush(
            self._heap, (record.priority, record.arrival, next(self._seq), record)
        )

    def on_remove(self, record: TupleRecord, now: int, *, expired: bool) -> None:
        # The record's heap entry just went stale.  Compaction keeps the
        # heap bounded by the resident count (amortised O(1) per
        # removal): filtering preserves the (priority, arrival, seq)
        # total order of the live entries, so pop order — and therefore
        # every eviction decision — is identical to the lazy heap's.
        self._dead += 1
        heap = self._heap
        if self._dead > 64 and 2 * self._dead > len(heap):
            self._heap = [entry for entry in heap if entry[3].alive]
            heapq.heapify(self._heap)
            self._dead = 0

    def _peek_min_alive(self) -> Optional[TupleRecord]:
        heap = self._heap
        while heap and not heap[0][3].alive:
            heapq.heappop(heap)
            self._dead -= 1
        return heap[0][3] if heap else None

    def choose_victim(self, candidate: TupleRecord, now: int) -> Optional[TupleRecord]:
        weakest = self._peek_min_alive()
        if weakest is None:
            return None
        # Cache the decision-time priority on the candidate so the trace
        # records what the policy believed even when the newcomer loses.
        candidate_priority = candidate.priority = self.partner_probability(candidate)
        if later_arrival_wins(
            weakest.priority, weakest.arrival, candidate_priority, candidate.arrival
        ):
            return weakest
        return None

    def weakest_resident(self, stream: str, now: int) -> Optional[TupleRecord]:
        return self._peek_min_alive()

    def snapshot_state(self):
        # The heap is rebuilt from the resident records on restore; only
        # mutable estimator state needs capturing.
        if not self._update_estimators:
            return None
        return {"estimators": copy.deepcopy(self._estimators)}

    def restore_state(self, state, records) -> None:
        if state is not None and "estimators" in state:
            self._estimators = copy.deepcopy(state["estimators"])
        # Re-push the governed residents in admission order with fresh
        # sequence numbers: relative seq order equals the original run's,
        # so pop order among live entries is identical (the original
        # heap's lazily retained dead entries never affect it).  The
        # priorities were cached on the records at admission and survive
        # the memory snapshot.
        self._heap = []
        self._seq = count()
        self._dead = 0
        for record in records:
            heapq.heappush(
                self._heap,
                (record.priority, record.arrival, next(self._seq), record),
            )
