"""ArM-aware eviction heuristic (extension; the paper's future work).

Section 6 lists "developing efficient algorithms for the Archive-metric"
as future work.  The Archive-metric (Section 2.2) counts tuples that were
not matched with *all* their partners — the post-processing debt a
night-mode archive pass must repay.  Evicting a resident tuple hurts ArM
in two distinct ways:

* **its own completeness** — lost if any partner still arrives after the
  eviction; expected indicator ``1 - (1 - p)^remaining`` — *unless* the
  tuple is already doomed (it missed an earlier partner, so its own
  completeness is unrecoverable);
* **its future partners' completeness** — every partner arriving within
  the tuple's remaining lifetime needs it resident; expected count
  ``p * remaining``.

The policy evicts the tuple with the smallest expected damage, i.e.
``p * remaining + (0 if doomed else 1 - (1 - p)^remaining)``.  Doom is
detectable online in the fast-CPU model: the join sees every arrival
before shedding, so an exact per-key count of recent arrivals compared
with the in-memory partner count reveals, at a tuple's arrival, whether
some earlier partner was already shed.

Like LIFE, the score decays over time, so victims are found by scanning
the resident tuples (O(M) per eviction) — acceptable at the scales the
ArM experiment runs at, and easily replaced by a bucketed scan if needed.
"""

from __future__ import annotations

import copy
from collections import deque
from typing import Hashable, Mapping, Optional

from ...stats.frequency import FrequencyEstimator
from ..memory import TupleRecord
from .base import EvictionPolicy


class KeyArrivalTracker:
    """Exact sliding count of per-key arrivals within the last ``w`` ticks."""

    def __init__(self, window: int) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self._window = window
        self._arrivals: dict[Hashable, deque[int]] = {}

    def observe(self, key: Hashable, now: int) -> None:
        self._arrivals.setdefault(key, deque()).append(now)

    def count_in_window(self, key: Hashable, now: int) -> int:
        """Arrivals of ``key`` at times in ``(now - w, now)`` (exclusive)."""
        bucket = self._arrivals.get(key)
        if not bucket:
            return 0
        horizon = now - self._window
        while bucket and bucket[0] <= horizon:
            bucket.popleft()
        size = len(bucket)
        # Exclude an arrival at `now` itself if already observed.
        if bucket and bucket[-1] == now:
            size -= 1
        return size


class ArmAwarePolicy(EvictionPolicy):
    """Eviction minimising expected Archive-metric damage.

    Parameters
    ----------
    estimators:
        Per-stream arrival-distribution estimators (a tuple is scored
        against the other stream's estimator, as in PROB).
    window:
        Window size ``w`` for lifetimes and the arrival trackers.
    """

    name = "ARM"

    def __init__(self, estimators: Mapping[str, FrequencyEstimator], window: int) -> None:
        super().__init__()
        missing = {"R", "S"} - set(estimators)
        if missing:
            raise ValueError(f"estimators missing for streams: {sorted(missing)}")
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self._estimators = dict(estimators)
        self._window = window
        self._trackers = {"R": KeyArrivalTracker(window), "S": KeyArrivalTracker(window)}

    def partner_probability(self, record: TupleRecord) -> float:
        other = "S" if record.stream == "R" else "R"
        return self._estimators[other].probability(record.key)

    def observe_arrival(self, stream: str, key: Hashable, now: int) -> None:
        self._trackers[stream].observe(key, now)

    def _is_doomed(self, record: TupleRecord, now: int) -> bool:
        """Did ``record`` already miss one of its earlier partners?

        Compares the true count of partner arrivals within the window
        (seen by the tracker) with the partners still resident; fixed at
        the tuple's own arrival instant, when the two can only differ
        because of earlier shedding.
        """
        other = "S" if record.stream == "R" else "R"
        arrived = self._trackers[other].count_in_window(record.key, now)
        present = self.memory.other_side(record.stream).match_count(record.key)
        return present < arrived

    def _damage(self, record: TupleRecord, now: int) -> float:
        """Expected ArM increase caused by evicting ``record`` now."""
        remaining = record.arrival + self._window - now
        p = record.priority  # partner probability, cached at admission
        partner_damage = p * remaining
        if record.tag:  # doomed: own completeness is already lost
            return partner_damage
        own_damage = 1.0 - (1.0 - p) ** remaining
        return partner_damage + own_damage

    def on_admit(self, record: TupleRecord, now: int) -> None:
        record.priority = self.partner_probability(record)
        record.tag = self._is_doomed(record, now)

    def weakest_resident(self, stream: str, now: int) -> Optional[TupleRecord]:
        weakest: Optional[TupleRecord] = None
        weakest_damage = 0.0
        for side in self.memory.eviction_candidates(stream):
            for record in side.records():
                damage = self._damage(record, now)
                if (
                    weakest is None
                    or damage < weakest_damage
                    or (damage == weakest_damage and record.arrival < weakest.arrival)
                ):
                    weakest = record
                    weakest_damage = damage
        return weakest

    def snapshot_state(self):
        # Trackers hold plain dicts of deques of ints — deepcopy keeps
        # the snapshot independent of the live run.
        return {"trackers": copy.deepcopy(self._trackers)}

    def restore_state(self, state, records) -> None:
        self._trackers = copy.deepcopy(state["trackers"])

    def choose_victim(self, candidate: TupleRecord, now: int) -> Optional[TupleRecord]:
        weakest = self.weakest_resident(candidate.stream, now)
        if weakest is None:
            return None
        weakest_damage = self._damage(weakest, now)

        candidate.priority = self.partner_probability(candidate)
        candidate.tag = self._is_doomed(candidate, now)
        candidate_damage = self._damage(candidate, now)
        if weakest_damage < candidate_damage or (
            weakest_damage == candidate_damage and weakest.arrival < candidate.arrival
        ):
            return weakest
        return None
