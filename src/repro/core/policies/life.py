"""LIFE: lifetime-weighted priority heuristic (Section 3.3.2).

A tuple's priority is ``remaining_lifetime * partner_probability`` — an
estimate of the output it would still produce *if it survived to expiry*.
Priorities therefore decay as time passes, so no static heap applies;
instead the policy exploits two facts:

* for a fixed key, the oldest resident tuple always has the smallest
  remaining lifetime, hence the smallest priority — so only per-key
  oldest tuples are ever candidates (the memory keeps per-key FIFOs);
* the number of distinct resident keys is bounded by the domain size, so
  a scan over resident keys finds the minimum quickly.

The paper shows LIFE performs barely better than RAND because the
full-lifetime assumption overestimates output for low-probability tuples.
"""

from __future__ import annotations

import copy
from typing import Mapping, Optional

from ...stats.frequency import FrequencyEstimator, StaticFrequencyTable
from ..memory import StreamMemory, TupleRecord
from .base import EvictionPolicy, later_arrival_wins


class LifePolicy(EvictionPolicy):
    """Remaining-lifetime x probability eviction (LIFE; LIFEV on a pool).

    Parameters
    ----------
    estimators:
        As for :class:`~repro.core.policies.prob.ProbPolicy`: per-stream
        arrival-distribution estimators; a tuple is scored against the
        *other* stream's estimator.
    window:
        Window size ``w``; a tuple arriving at ``i`` has remaining
        lifetime ``i + w - now`` at decision time ``now``.
    update_estimators:
        As for :class:`~repro.core.policies.prob.ProbPolicy`: when True,
        each arrival is fed to its own stream's estimator so online
        statistics (EWMA, sketches) track the live distribution.
    """

    name = "LIFE"

    def __init__(
        self,
        estimators: Mapping[str, FrequencyEstimator],
        window: int,
        *,
        update_estimators: bool = False,
    ) -> None:
        super().__init__()
        missing = {"R", "S"} - set(estimators)
        if missing:
            raise ValueError(f"estimators missing for streams: {sorted(missing)}")
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self._estimators = dict(estimators)
        self._window = window
        self._update_estimators = update_estimators
        # Static tables never change, so partner probabilities collapse
        # to one dict lookup per scanned key (mirrors ProbPolicy).
        if not update_estimators and all(
            isinstance(est, StaticFrequencyTable) for est in self._estimators.values()
        ):
            self._partner_probs: Optional[dict] = {
                "R": self._estimators["S"].as_dict(),
                "S": self._estimators["R"].as_dict(),
            }
            # Rebuild the cache when a table is updated wholesale
            # (re-baselining); stale probabilities would silently skew
            # every later eviction contest.
            for est in self._estimators.values():
                est.subscribe(self._refresh_partner_probs)
        else:
            self._partner_probs = None
        self.observes_arrivals = update_estimators

    def _refresh_partner_probs(self) -> None:
        self._partner_probs = {
            "R": self._estimators["S"].as_dict(),
            "S": self._estimators["R"].as_dict(),
        }

    def observe_arrival(self, stream: str, key, now: int) -> None:
        if self._update_estimators:
            self._estimators[stream].observe(key)

    def partner_probability(self, stream: str, key) -> float:
        probs = self._partner_probs
        if probs is not None:
            return probs[stream].get(key, 0.0)
        other = "S" if stream == "R" else "R"
        return self._estimators[other].probability(key)

    def _priority(self, record: TupleRecord, now: int) -> float:
        remaining = record.arrival + self._window - now
        return remaining * self.partner_probability(record.stream, record.key)

    def _weakest_on(
        self, side: StreamMemory, now: int
    ) -> tuple[Optional[TupleRecord], float]:
        """Minimum-priority resident of one side (ties: earliest arrival).

        Only per-key oldest tuples are candidates (module docstring), so
        the scan walks the alive-key counter dict — never a copy of it;
        ``oldest_alive`` mutates only the per-key buckets — resolving
        each key through the memory's per-key FIFO and scoring it with
        at most one dict lookup.
        """
        best: Optional[TupleRecord] = None
        best_priority = 0.0
        offset = self._window - now
        probs = self._partner_probs
        side_probs = probs[side.stream] if probs is not None else None
        oldest_alive = side.oldest_alive
        for key in side._key_counts:
            record = oldest_alive(key)
            if record is None:  # pragma: no cover - counted keys are alive
                continue
            if side_probs is not None:
                p = side_probs.get(key, 0.0)
            else:
                p = self.partner_probability(side.stream, key)
            priority = (record.arrival + offset) * p
            if (
                best is None
                or priority < best_priority
                or (priority == best_priority and record.arrival < best.arrival)
            ):
                best = record
                best_priority = priority
        return best, best_priority

    def _weakest(self, stream: str, now: int) -> tuple[Optional[TupleRecord], float]:
        weakest: Optional[TupleRecord] = None
        weakest_priority = 0.0
        for side in self.memory.eviction_candidates(stream):
            contender, priority = self._weakest_on(side, now)
            if contender is None:
                continue
            if (
                weakest is None
                or priority < weakest_priority
                or (priority == weakest_priority and contender.arrival < weakest.arrival)
            ):
                weakest = contender
                weakest_priority = priority
        return weakest, weakest_priority

    def weakest_resident(self, stream: str, now: int) -> Optional[TupleRecord]:
        return self._weakest(stream, now)[0]

    def choose_victim(self, candidate: TupleRecord, now: int) -> Optional[TupleRecord]:
        weakest, weakest_priority = self._weakest(candidate.stream, now)
        if weakest is None:
            return None

        # Cache the decision-time priority on the candidate so the trace
        # records what the policy believed even when the newcomer loses.
        candidate_priority = candidate.priority = self._window * self.partner_probability(
            candidate.stream, candidate.key
        )
        if later_arrival_wins(
            weakest_priority,
            weakest.arrival,
            candidate_priority,
            candidate.arrival,
        ):
            return weakest
        return None

    def snapshot_state(self):
        # LIFE keeps no heap — priorities are recomputed by scanning the
        # memory — so only mutable estimator state needs capturing.
        if not self._update_estimators:
            return None
        return {"estimators": copy.deepcopy(self._estimators)}

    def restore_state(self, state, records) -> None:
        if state is not None and "estimators" in state:
            self._estimators = copy.deepcopy(state["estimators"])
