"""RAND: random load shedding, the paper's state-of-the-art baseline.

When the memory is full, the victim is drawn uniformly at random from the
resident tuples the newcomer may displace plus (by default) the newcomer
itself, so every tuple — old or new — is equally likely to be shed.  This
is the value-oblivious strategy of Kang et al. that the paper's semantic
policies are measured against.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..memory import TupleRecord
from .base import EvictionPolicy


class RandomEvictionPolicy(EvictionPolicy):
    """Uniform random eviction (RAND; RANDV on a variable pool).

    Parameters
    ----------
    seed:
        Seed for the policy's private RNG; runs are reproducible.
    include_newcomer:
        When True (default) the newcomer is part of the victim draw, so it
        is rejected with probability ``1 / (residents + 1)``.  When False
        the newcomer is always admitted and a resident is always evicted.
    """

    name = "RAND"

    def __init__(self, *, seed: int = 0, include_newcomer: bool = True) -> None:
        super().__init__()
        self._rng = np.random.default_rng(seed)
        self._include_newcomer = include_newcomer

    def choose_victim(self, candidate: TupleRecord, now: int) -> Optional[TupleRecord]:
        sides = self.memory.eviction_candidates(candidate.stream)
        resident_count = sum(side.size for side in sides)
        if resident_count == 0:
            return None  # nothing can be displaced; drop the newcomer

        population = resident_count + (1 if self._include_newcomer else 0)
        index = int(self._rng.integers(population))
        if index == resident_count:
            return None  # the newcomer itself was drawn
        for side in sides:
            if index < side.size:
                return side.record_at_slot(index)
            index -= side.size
        raise AssertionError("unreachable: index within resident_count")

    def weakest_resident(self, stream: str, now: int) -> Optional[TupleRecord]:
        sides = self.memory.eviction_candidates(stream)
        resident_count = sum(side.size for side in sides)
        if resident_count == 0:
            return None
        index = int(self._rng.integers(resident_count))
        for side in sides:
            if index < side.size:
                return side.record_at_slot(index)
            index -= side.size
        raise AssertionError("unreachable: index within resident_count")

    def snapshot_state(self):
        return {"rng": self._rng.bit_generator.state}

    def restore_state(self, state, records) -> None:
        self._rng.bit_generator.state = state["rng"]
