"""Join-memory eviction policies (semantic load shedding).

* :class:`RandomEvictionPolicy` — RAND/RANDV, the random-shedding baseline;
* :class:`ProbPolicy` — PROB/PROBV, partner-arrival probability;
* :class:`LifePolicy` — LIFE/LIFEV, remaining-lifetime x probability;
* :class:`ArmAwarePolicy` — extension targeting the Archive-metric.
"""

from .arm import ArmAwarePolicy, KeyArrivalTracker
from .base import EvictionPolicy, later_arrival_wins
from .fifo import FifoPolicy
from .life import LifePolicy
from .prob import ProbPolicy
from .random_policy import RandomEvictionPolicy

__all__ = [
    "ArmAwarePolicy",
    "EvictionPolicy",
    "FifoPolicy",
    "KeyArrivalTracker",
    "LifePolicy",
    "ProbPolicy",
    "RandomEvictionPolicy",
    "later_arrival_wins",
]
