"""Join-memory eviction policies (semantic load shedding).

* :class:`RandomEvictionPolicy` — RAND/RANDV, the random-shedding baseline;
* :class:`ProbPolicy` — PROB/PROBV, partner-arrival probability;
* :class:`LifePolicy` — LIFE/LIFEV, remaining-lifetime x probability;
* :class:`ArmAwarePolicy` — extension targeting the Archive-metric;
* :class:`FifoPolicy` — oldest-first baseline.

Constructing policies
---------------------
:func:`make_policy` is the registry-backed front door: it maps a policy
name ("RAND", "PROB", ...; the variable-allocation aliases "RANDV" etc.
are accepted) to a configured instance, validating that the statistics
and window arguments the policy needs were supplied.  New policies join
the registry via :func:`register_policy`.

:func:`make_policy_spec` builds what an engine's ``policy=`` argument
expects: a single instance for a variable (shared-pool) run, or a
:class:`SidePolicies` pair — two independent instances — for the fixed
M/2 + M/2 allocation (:func:`resolve_policy_spec` is the single
normalisation point all engines share; the legacy ``{"R": ..., "S":
...}`` dict spec was removed after its deprecation cycle).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, Optional

from .arm import ArmAwarePolicy, KeyArrivalTracker
from .base import EvictionPolicy, arrival_observers, later_arrival_wins
from .fifo import FifoPolicy
from .life import LifePolicy
from .prob import ProbPolicy
from .random_policy import RandomEvictionPolicy

__all__ = [
    "ArmAwarePolicy",
    "EvictionPolicy",
    "FifoPolicy",
    "KeyArrivalTracker",
    "LifePolicy",
    "POLICY_NAMES",
    "ProbPolicy",
    "RandomEvictionPolicy",
    "ResolvedPolicies",
    "SidePolicies",
    "arrival_observers",
    "later_arrival_wins",
    "make_policy",
    "make_policy_spec",
    "register_policy",
    "resolve_policy_spec",
]


# ----------------------------------------------------------------------
# the policy registry
# ----------------------------------------------------------------------

def _require(name: str, kwargs: dict, *needed: str) -> None:
    missing = [key for key in needed if kwargs.get(key) is None]
    if missing:
        raise ValueError(
            f"policy {name!r} requires {', '.join(missing)} "
            "(pass them to make_policy)"
        )


def _make_rand(*, seed: int = 0, **_ignored) -> EvictionPolicy:
    return RandomEvictionPolicy(seed=seed)


def _make_prob(*, estimators=None, update_estimators=False, **_ignored) -> EvictionPolicy:
    _require("PROB", {"estimators": estimators}, "estimators")
    return ProbPolicy(estimators, update_estimators=update_estimators)


def _make_life(
    *, estimators=None, window=None, update_estimators=False, **_ignored
) -> EvictionPolicy:
    _require("LIFE", {"estimators": estimators, "window": window}, "estimators", "window")
    return LifePolicy(estimators, window, update_estimators=update_estimators)


def _make_arm(*, estimators=None, window=None, **_ignored) -> EvictionPolicy:
    _require("ARM", {"estimators": estimators, "window": window}, "estimators", "window")
    return ArmAwarePolicy(estimators, window)


def _make_fifo(**_ignored) -> EvictionPolicy:
    return FifoPolicy()


#: name -> factory(**kwargs) producing one configured policy instance.
_POLICY_FACTORIES: dict[str, Callable[..., EvictionPolicy]] = {
    "RAND": _make_rand,
    "PROB": _make_prob,
    "LIFE": _make_life,
    "ARM": _make_arm,
    "FIFO": _make_fifo,
}

#: Registered base policy names (variable runs use the same factories).
POLICY_NAMES = tuple(_POLICY_FACTORIES)


def register_policy(name: str, factory: Callable[..., EvictionPolicy]) -> None:
    """Add (or replace) a policy factory under ``name``.

    The factory receives the keyword arguments given to
    :func:`make_policy` (``estimators``, ``window``, ``seed``, plus any
    extras) and returns a fresh :class:`EvictionPolicy`.
    """
    key = name.upper()
    if key.endswith("V") and key[:-1] in _POLICY_FACTORIES:
        raise ValueError(
            f"{name!r} collides with the variable-allocation alias of {key[:-1]!r}"
        )
    _POLICY_FACTORIES[key] = factory
    global POLICY_NAMES
    POLICY_NAMES = tuple(_POLICY_FACTORIES)


def _base_name(name: str) -> str:
    key = name.upper()
    if key not in _POLICY_FACTORIES and key.endswith("V") and key[:-1] in _POLICY_FACTORIES:
        return key[:-1]
    return key


def make_policy(name: str, **kwargs) -> EvictionPolicy:
    """Build one policy instance by registry name.

    ``name`` is case-insensitive; a trailing ``V`` (the paper's
    variable-allocation suffix) is accepted and ignored — whether the
    instance governs a shared pool is the engine configuration's
    business, not the policy's.
    """
    key = _base_name(name)
    factory = _POLICY_FACTORIES.get(key)
    if factory is None:
        raise ValueError(
            f"unknown policy {name!r}; choose from {', '.join(_POLICY_FACTORIES)}"
        )
    return factory(**kwargs)


# ----------------------------------------------------------------------
# engine policy specifications
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SidePolicies:
    """Two independent per-side policies for a fixed-allocation run."""

    r: EvictionPolicy
    s: EvictionPolicy

    def __post_init__(self) -> None:
        if self.r is self.s:
            raise ValueError(
                "fixed allocation needs two independent policy instances"
            )


def make_policy_spec(
    name: str,
    *,
    variable: bool = False,
    estimators=None,
    window: Optional[int] = None,
    seed: int = 0,
    **kwargs,
):
    """Build an engine-ready policy spec from a registry name.

    Variable allocation gets a single instance governing the shared
    pool; fixed allocation gets a :class:`SidePolicies` pair whose R and
    S instances differ only in their random seed (matching the paper's
    per-side independence).  A trailing ``V`` in ``name`` also selects
    variable allocation ("PROBV" == ``variable=True``).
    """
    if name.upper().endswith("V") and _base_name(name) != name.upper():
        variable = True
    if variable:
        return make_policy(name, estimators=estimators, window=window, seed=seed, **kwargs)
    # Every arrival is broadcast to *each* policy instance, so two
    # fixed-allocation instances sharing online estimator objects would
    # double-count; give the S side its own copies when updating.
    s_estimators = estimators
    if kwargs.get("update_estimators") and estimators is not None:
        s_estimators = copy.deepcopy(estimators)
    return SidePolicies(
        r=make_policy(name, estimators=estimators, window=window, seed=seed, **kwargs),
        s=make_policy(name, estimators=s_estimators, window=window, seed=seed + 1, **kwargs),
    )


@dataclass(frozen=True)
class ResolvedPolicies:
    """Normalised per-side wiring an engine consumes.

    ``instances`` holds each distinct policy once (for arrival
    broadcasts); ``name`` is the display name ("PROB", "PROBV", "NONE").
    """

    r: Optional[EvictionPolicy]
    s: Optional[EvictionPolicy]
    instances: tuple[EvictionPolicy, ...]
    name: str


def resolve_policy_spec(policy, memory, *, variable: bool) -> ResolvedPolicies:
    """Normalise an engine's ``policy=`` argument and bind it to memory.

    Accepts ``None`` (no shedding), a single :class:`EvictionPolicy`
    (shared pool; requires ``variable``), or a :class:`SidePolicies`
    pair (fixed allocation).  Anything else is a :class:`TypeError` —
    notably plain strings (build those with :func:`make_policy_spec`)
    and the removed legacy ``{"R": ..., "S": ...}`` dict spec.
    """
    if isinstance(policy, dict):
        raise TypeError(
            "dict policy specs ({'R': ..., 'S': ...}) were removed; "
            "use repro.core.policies.SidePolicies or make_policy_spec()"
        )

    if policy is None:
        return ResolvedPolicies(r=None, s=None, instances=(), name="NONE")

    if isinstance(policy, EvictionPolicy):
        if not variable:
            raise ValueError(
                "a single policy instance requires variable allocation; "
                "pass SidePolicies(r=..., s=...) for fixed allocation"
            )
        policy.bind(memory)
        return ResolvedPolicies(
            r=policy, s=policy, instances=(policy,), name=f"{policy.name}V"
        )

    if isinstance(policy, SidePolicies):
        if variable:
            raise ValueError(
                "per-side policies require fixed allocation; "
                "pass a single policy for a variable pool"
            )
        policy.r.bind(memory)
        policy.s.bind(memory)
        return ResolvedPolicies(
            r=policy.r, s=policy.s, instances=(policy.r, policy.s), name=policy.r.name
        )

    raise TypeError(f"unsupported policy specification: {policy!r}")
