"""FIFO: evict the oldest resident (a value-oblivious baseline).

Not in the paper's comparison, but the natural "do what the window does,
only sooner" strategy: the memory holds the *most recent* M tuples, i.e.
a uniformly shrunken window.  Deterministic, which makes it a useful
baseline alongside RAND in ablations: FIFO retains recency, RAND retains
a uniform sample of the window — both ignore values.

Expected behaviour: close to RAND on iid inputs (for a shrunken window
of size m per stream the expected output is ~m/w of EXACT, like RAND's
linear curve), far below PROB on skewed inputs.
"""

from __future__ import annotations

from typing import Optional

from ..memory import StreamMemory, TupleRecord
from .base import EvictionPolicy


class FifoPolicy(EvictionPolicy):
    """Always admit the newcomer; evict the earliest-arrived resident."""

    name = "FIFO"

    def _oldest_on(self, side: StreamMemory) -> Optional[TupleRecord]:
        oldest: Optional[TupleRecord] = None
        for key in list(side.resident_keys()):
            record = side.oldest_alive(key)
            if record is not None and (oldest is None or record.arrival < oldest.arrival):
                oldest = record
        return oldest

    def weakest_resident(self, stream: str, now: int) -> Optional[TupleRecord]:
        oldest: Optional[TupleRecord] = None
        for side in self.memory.eviction_candidates(stream):
            contender = self._oldest_on(side)
            if contender is not None and (
                oldest is None or contender.arrival < oldest.arrival
            ):
                oldest = contender
        return oldest

    def choose_victim(self, candidate: TupleRecord, now: int) -> Optional[TupleRecord]:
        return self.weakest_resident(candidate.stream, now)
