"""Slow-CPU, modular join processing (Section 2.1; future work in §6).

When tuples arrive faster than the join can process them, a queue buffers
the input and overflows must be shed *before* tuples ever reach the join
— the Aurora-style load shedding the paper generalises.  This module
implements that modular architecture as an extension:

* bursty arrival schedules (see :mod:`repro.streams.arrival`) feed
  per-stream queues of bounded capacity;
* the join operator pulls up to ``service_per_tick`` tuples per tick
  (oldest arrival first, alternating between streams on ties);
* queue overflow triggers a queue-shedding policy: ``"tail"`` (drop the
  newcomer), ``"random"`` (drop a uniformly random queued tuple) or
  ``"prob"`` (semantic: drop the queued tuple with the lowest
  partner-arrival probability);
* tuples that expire while queued are discarded unprocessed;
* tuples reaching the join are processed exactly as in the fast-CPU
  model (probe, then admission under the join-memory eviction policy).

Simplifications vs. the paper's informal description (documented in
DESIGN.md): the simultaneous-arrival pair is not special-cased (delayed
tuples are processed individually, so a same-tick pair is produced iff
one partner is resident when the other is processed), and service
capacity is counted in tuples rather than CPU cost units.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..obs import Timer, active_or_none
from ..obs.trace import (
    EVENT_ARRIVE,
    EVENT_DROP,
    EVENT_EXPIRE,
    REASON_QUEUE,
    TraceEvent,
    tracing_or_none,
)
from ..stats.frequency import FrequencyEstimator
from .engine import PolicySpec
from .kernel import JoinKernel
from .memory import JoinMemory, TupleRecord
from .policies import resolve_policy_spec
from .results import BaseRunResult, DropBreakdown

QUEUE_POLICIES = ("tail", "random", "prob")


@dataclass
class SlowCpuConfig:
    """Configuration of a slow-CPU run.

    ``service_per_tick`` below the mean total arrival rate makes the
    queue the binding resource; ``queue_capacity`` bounds its size.
    """

    window: int
    memory: int
    service_per_tick: int
    queue_capacity: int
    queue_policy: str = "tail"
    variable: bool = False
    warmup: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError(f"window must be positive, got {self.window}")
        if self.memory <= 0:
            raise ValueError(f"memory must be positive, got {self.memory}")
        if self.service_per_tick <= 0:
            raise ValueError("service_per_tick must be positive")
        if self.queue_capacity <= 0:
            raise ValueError("queue_capacity must be positive")
        if self.queue_policy not in QUEUE_POLICIES:
            raise ValueError(
                f"queue_policy must be one of {QUEUE_POLICIES}, got {self.queue_policy!r}"
            )
        if self.warmup is None:
            self.warmup = 2 * self.window


@dataclass
class SlowCpuResult(BaseRunResult):
    """Counters of one slow-CPU run.

    ``total_delay`` sums, over processed tuples, the ticks spent waiting
    in the queue — the basis of the "average output delay" measure the
    paper mentions alongside ArM (Section 2.2).  ``drop_counts`` keeps
    its historical meaning here: queue sheds per stream side.
    """

    output_count: int
    processed: int
    shed_from_queue: int
    expired_in_queue: int
    arrived: int
    max_queue_length: int
    total_delay: int = 0
    drop_counts: dict = field(default_factory=dict)
    evicted_from_memory: int = 0
    rejected_from_memory: int = 0
    expired_resident: int = 0
    policy_name: str = "NONE"
    metrics: Optional[dict] = None
    trace: Optional[list] = None

    engine_kind = "slowcpu"

    def drop_breakdown(self) -> DropBreakdown:
        return DropBreakdown(
            rejected=self.shed_from_queue + self.rejected_from_memory,
            evicted=self.evicted_from_memory,
            expired=self.expired_in_queue + self.expired_resident,
        )

    @property
    def mean_delay(self) -> float:
        """Average queueing delay per processed tuple (ticks)."""
        if self.processed == 0:
            return 0.0
        return self.total_delay / self.processed


class SlowCpuEngine:
    """Modular-model simulator: bounded queue in front of the join.

    Parameters
    ----------
    config:
        Run configuration.
    policy:
        Join-memory eviction policy, as for
        :class:`~repro.core.engine.JoinEngine` (``None`` = never evict;
        requires sufficient memory).
    estimators:
        Per-stream arrival-probability estimators; required by the
        ``"prob"`` queue policy (a queued R-tuple is scored with the S
        estimator, as in PROB).
    """

    def __init__(
        self,
        config: SlowCpuConfig,
        policy: PolicySpec = None,
        estimators: Optional[dict] = None,
        *,
        metrics=None,
        trace=None,
    ) -> None:
        if config.queue_policy == "prob" and not estimators:
            raise ValueError("the 'prob' queue policy needs estimators")
        self.config = config
        self.memory = JoinMemory(config.memory, variable=config.variable)
        self.metrics = metrics
        self.trace = trace
        self._estimators: dict[str, FrequencyEstimator] = estimators or {}
        self._rng = np.random.default_rng(config.seed)

        resolved = resolve_policy_spec(policy, self.memory, variable=config.variable)
        self._policy_r = resolved.r
        self._policy_s = resolved.s
        self.policy_name = resolved.name

    # ------------------------------------------------------------------
    def _partner_probability(self, stream: str, key) -> float:
        other = "S" if stream == "R" else "R"
        estimator = self._estimators.get(other)
        return estimator.probability(key) if estimator is not None else 0.0

    def _shed_from_queue(self, queue: deque, newcomer) -> Optional[tuple]:
        """Apply the queue policy; returns the shed tuple.

        ``newcomer`` is ``(arrival, stream, key)`` not yet enqueued; the
        returned victim may be the newcomer itself.
        """
        policy = self.config.queue_policy
        if policy == "tail" or not queue:
            return newcomer
        if policy == "random":
            index = int(self._rng.integers(len(queue) + 1))
            if index == len(queue):
                return newcomer
            victim = queue[index]
            del queue[index]
            return victim
        # "prob": shed the lowest partner probability; ties drop older.
        weakest_index = -1
        weakest_score: tuple[float, int] = (
            self._partner_probability(newcomer[1], newcomer[2]),
            newcomer[0],
        )
        for index, (arrival, stream, key) in enumerate(queue):
            score = (self._partner_probability(stream, key), arrival)
            if score < weakest_score:
                weakest_score = score
                weakest_index = index
        if weakest_index < 0:
            return newcomer
        victim = queue[weakest_index]
        del queue[weakest_index]
        return victim

    def run(
        self,
        r_keys: Sequence,
        s_keys: Sequence,
        r_schedule: Sequence[int],
        s_schedule: Sequence[int],
    ) -> SlowCpuResult:
        """Simulate the queue + join pipeline over bursty arrivals.

        ``r_schedule[t]`` tuples of ``r_keys`` arrive at tick ``t`` (keys
        are consumed in order); likewise for S.  The schedules' totals
        must not exceed the key sequences' lengths.
        """
        config = self.config
        window = config.window
        warmup = config.warmup
        assert warmup is not None
        if sum(r_schedule) > len(r_keys) or sum(s_schedule) > len(s_keys):
            raise ValueError("schedules deliver more tuples than keys provided")
        if len(r_schedule) != len(s_schedule):
            raise ValueError("schedules must cover the same number of ticks")

        queues = {"R": deque(), "S": deque()}
        next_key = {"R": 0, "S": 0}
        keys = {"R": r_keys, "S": s_keys}
        schedules = {"R": r_schedule, "S": s_schedule}

        output = 0
        processed = 0
        shed = 0
        expired_in_queue = 0
        arrived = 0
        max_queue = 0
        total_delay = 0
        drop_counts = {"R": 0, "S": 0}

        obs = active_or_none(self.metrics)
        tracer = tracing_or_none(self.trace)
        # The join memory, its policies, and every resident-side drop /
        # notify / trace is the kernel's job; this engine only manages
        # the queues in front of it.
        kernel = JoinKernel(self.memory, self._policy_r, self._policy_s, tracer=tracer)
        tracing = tracer is not None
        timed = obs is not None
        if timed:
            run_timer = Timer()
            run_timer.start()
            depth_r = obs.series("queue.depth", side="R")
            depth_s = obs.series("queue.depth", side="S")

        for t in range(len(r_schedule)):
            # Expired records are simply absent afterwards; PROB/ARM heaps
            # clean up lazily via the records' alive flags.
            kernel.expire(t - window, t)

            # Arrivals.
            for stream in ("R", "S"):
                for _ in range(schedules[stream][t]):
                    key = keys[stream][next_key[stream]]
                    next_key[stream] += 1
                    arrived += 1
                    kernel.observe(stream, key, t)
                    if tracing:
                        tracer.emit(TraceEvent(t, stream, key, EVENT_ARRIVE, t))
                    newcomer = (t, stream, key)
                    queue = queues[stream]
                    if len(queue) >= config.queue_capacity:
                        victim = self._shed_from_queue(queue, newcomer)
                        shed += 1
                        drop_counts[victim[1]] += 1
                        if tracing:
                            tracer.emit(TraceEvent(
                                t, victim[1], victim[2], EVENT_DROP,
                                victim[0], None, REASON_QUEUE,
                            ))
                        if victim is newcomer:
                            continue
                    queue.append(newcomer)
            max_queue = max(max_queue, len(queues["R"]) + len(queues["S"]))
            if timed:
                depth_r.append(t, len(queues["R"]))
                depth_s.append(t, len(queues["S"]))

            # Service: oldest arrival first, alternating on ties.
            budget = config.service_per_tick
            toggle = t % 2  # fairness: alternate which stream wins ties
            while budget > 0:
                head_r = queues["R"][0] if queues["R"] else None
                head_s = queues["S"][0] if queues["S"] else None
                if head_r is None and head_s is None:
                    break
                if head_s is None or (
                    head_r is not None
                    and (head_r[0], toggle) <= (head_s[0], 1 - toggle)
                ):
                    arrival, stream, key = queues["R"].popleft()
                else:
                    arrival, stream, key = queues["S"].popleft()
                if arrival <= t - window:
                    expired_in_queue += 1
                    if tracing:
                        tracer.emit(TraceEvent(
                            t, stream, key, EVENT_EXPIRE, arrival,
                            None, REASON_QUEUE,
                        ))
                    continue  # expired while queued; costs no service
                matches = kernel.probe(stream, key, t)
                kernel.insert(TupleRecord(stream, arrival, key), t)
                processed += 1
                total_delay += t - arrival
                budget -= 1
                if t >= warmup:
                    output += matches

        # The memory-side scalars are views of the kernel's ledger — one
        # source of truth instead of counters drifting per engine.
        memory_drops = kernel.drops()
        evicted_from_memory = memory_drops.evicted
        rejected_from_memory = memory_drops.rejected
        expired_resident = memory_drops.expired

        snapshot = None
        if obs is not None:
            run_timer.stop()
            obs.counter("queue.arrived").inc(arrived)
            obs.counter("queue.processed").inc(processed)
            obs.counter("queue.expired").inc(expired_in_queue)
            for side in ("R", "S"):
                obs.counter("queue.shed", side=side).inc(drop_counts[side])
            obs.gauge("queue.max_depth").set(max_queue)
            obs.counter("engine.output").inc(output)
            obs.counter("engine.drops", reason="evicted").inc(evicted_from_memory)
            obs.counter("engine.drops", reason="rejected").inc(rejected_from_memory)
            obs.counter("engine.drops", reason="expired").inc(expired_resident)
            obs.record_phase("engine/run", run_timer.seconds)
            snapshot = obs.snapshot()

        trace_events = None
        if tracing:
            trace_events = tracer.collect()

        return SlowCpuResult(
            output_count=output,
            processed=processed,
            shed_from_queue=shed,
            expired_in_queue=expired_in_queue,
            arrived=arrived,
            max_queue_length=max_queue,
            total_delay=total_delay,
            drop_counts=drop_counts,
            evicted_from_memory=evicted_from_memory,
            rejected_from_memory=rejected_from_memory,
            expired_resident=expired_resident,
            policy_name=self.policy_name,
            metrics=snapshot,
            trace=trace_events,
        )
