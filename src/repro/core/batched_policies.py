"""Vectorized policy lanes for the columnar micro-batch fast path.

The EXACT count lanes of :mod:`repro.core.batched` prove that the
synchronous join collapses to dictionary count arithmetic when nothing
is ever shed.  The lanes here extend that collapse to the paper's
shedding policies — RAND, PROB, and LIFE, fixed and variable allocation
— by replacing the engine's record-object machinery with flat state the
hot loop can drive per :class:`~repro.streams.batches.StreamChunk`:

* **probes** stay per-key count arithmetic (two dict lookups per tick);
* **candidate priorities** (PROB's partner probability, LIFE's
  ``window * p``) are gathered once per chunk from a dense numpy view of
  the PR-3 static probability tables (``dense[key_column]``), with a
  per-key ``dict.get`` fallback when numpy is absent or keys are not
  small non-negative integers;
* **RAND draws** come from a pre-drawn block of the policy's own
  generator: once contests begin the draw bound is a run constant
  (contests only fire on a full side/pool), so one
  ``Generator.integers(bound, size=N)`` call replaces N scalar calls.
  A one-time probe verifies block draws reproduce the scalar-draw
  sequence bit-for-bit; if the installed numpy disagrees the lane falls
  back to scalar draws (identical decisions, smaller win);
* **PROB's weakest resident** is a lazy min-heap of bare
  ``(priority, arrival)`` tuples (``(priority, arrival, side)`` on a
  shared pool) — the same total order as
  :class:`~repro.core.policies.prob.ProbPolicy`'s record heap, because
  per-side arrival times are unique;
* **LIFE's weakest-victim scan** walks a per-key aggregate view —
  ``key -> (arrival deque, partner probability)`` — so each distinct
  resident key costs one deque peek and one multiply, instead of the
  per-tuple path's record resolution through the memory's per-key FIFOs.

Identity contract
-----------------
Every lane reproduces ``JoinEngine._run_fast`` bit-for-bit: output and
total-output counts, the drop ledger, survival departures, and the
sampled occupancy/share series.  The load-bearing structural facts (all
asserted by ``tests/test_policy_batched.py`` across policies × batch
sizes × allocation modes):

* the synchronous model admits one tuple per side per tick, so per-side
  arrival times are unique — ``(priority, arrival)`` is a total order
  and the record-identity tie-breaks of the per-tuple structures can
  never fire;
* a resident's arrival lies in ``(t - window, t]``, so a ring buffer of
  ``window`` entries resolves arrival -> key (and arrival -> slot for
  RAND's swap-remove slot array) without per-record objects;
* RAND victims are drawn *by slot index*, so the lane maintains the
  side's slot array with exactly the engine's append/swap-remove
  discipline — slot order is replicated, not just membership;
* LIFE only ever removes a key's oldest resident (evictions pick it,
  expiry removes the globally oldest, which is also its key's oldest),
  so a per-key arrival deque popped from the left mirrors the memory's
  per-key FIFO exactly.

Lanes are *gated*, not general: :func:`lane_kind_for_policies` accepts
only exact policy types in their static configuration (RAND with the
default newcomer-inclusive draw, PROB/LIFE with frozen
:class:`~repro.stats.frequency.StaticFrequencyTable` estimators).
Online estimators, ARM/FIFO, tracers, and schedules keep the per-tuple
paths.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Iterable, NamedTuple, Optional

from ..streams.batches import HAVE_NUMPY, StreamChunk

if HAVE_NUMPY:  # pragma: no branch - import guard
    import numpy as _np

__all__ = [
    "LaneTotals",
    "lane_kind_for_policies",
    "life_chunk_run",
    "prob_chunk_run",
    "rand_chunk_run",
]

#: Pre-drawn RAND block size: large enough to amortise the generator
#: call, small enough that an abandoned tail at stream end is cheap.
_DRAW_BLOCK = 512

#: bound -> whether `integers(bound, size=n)` reproduces n scalar draws.
_BLOCK_DRAW_OK: dict[int, bool] = {}


class LaneTotals(NamedTuple):
    """Everything a policy lane reports back to the engine."""

    output: int
    total_output: int
    simultaneous_total: int
    length: int
    rej_r: int
    rej_s: int
    ev_r: int
    ev_s: int
    exp_r: int
    exp_s: int
    r_size: int
    s_size: int


# ----------------------------------------------------------------------
# gating
# ----------------------------------------------------------------------

def lane_kind_for_policies(
    policy_r, policy_s, *, variable: bool, observers
) -> Optional[str]:
    """Which lane (``"rand"``/``"prob"``/``"life"``) covers this policy
    wiring, or ``None`` for the per-tuple fallback.

    Exact-type checks on purpose: a subclass may override decision
    methods the lane inlines.  PROB/LIFE qualify only with their static
    partner-probability cache materialised (frozen
    ``StaticFrequencyTable`` estimators, no online updates); RAND only
    with the default newcomer-inclusive draw.  Arrival observers mean
    online statistics are flowing — per-tuple path.
    """
    from .policies.life import LifePolicy
    from .policies.prob import ProbPolicy
    from .policies.random_policy import RandomEvictionPolicy

    if observers:
        return None

    def kind(policy):
        tp = type(policy)
        if tp is RandomEvictionPolicy:
            return "rand" if policy._include_newcomer else None
        if tp is ProbPolicy:
            return "prob" if policy._partner_probs is not None else None
        if tp is LifePolicy:
            return "life" if policy._partner_probs is not None else None
        return None

    if variable:
        if policy_r is None or policy_r is not policy_s:
            return None
        return kind(policy_r)
    if policy_r is None or policy_s is None:
        return None
    kind_r = kind(policy_r)
    return kind_r if kind_r is not None and kind_r == kind(policy_s) else None


# ----------------------------------------------------------------------
# probability columns
# ----------------------------------------------------------------------

def _dense_from_dict(probs: dict):
    """Dense ``key -> probability`` array for small non-negative int keys.

    Returns ``None`` (dict-lookup fallback) without numpy, for
    non-integer keys, or when the key range is too sparse to densify.
    """
    if not HAVE_NUMPY or not probs:
        return None
    max_key = -1
    for key in probs:
        if type(key) is not int or key < 0:
            return None
        if key > max_key:
            max_key = key
    if max_key >= 1 << 22:  # don't allocate a huge, mostly-empty table
        return None
    dense = _np.zeros(max_key + 1, dtype=_np.float64)
    for key, p in probs.items():
        dense[key] = p
    return dense


def _prob_column(column, keys: list, dense, probs: dict) -> list:
    """Per-chunk candidate-priority column: ``[table[k] for k in keys]``.

    ``column`` is the chunk's raw key column (numpy when available);
    ``keys`` the expanded list the hot loop indexes.  The dense gather
    produces exactly the dict's float values (one float64 copy), so the
    two paths are bit-identical.
    """
    if (
        dense is not None
        and isinstance(column, _np.ndarray)
        and column.size
        and column.min() >= 0
        and column.max() < dense.shape[0]
    ):
        return dense[column].tolist()
    get = probs.get
    return [get(key, 0.0) for key in keys]


# ----------------------------------------------------------------------
# RAND
# ----------------------------------------------------------------------

def _block_draws_equivalent(bound: int) -> bool:
    """Does ``integers(bound, size=n)`` equal n scalar draws, bit-for-bit?

    Empirically probed once per bound with throwaway generators (values
    *and* end state must agree), because the lane's pre-drawn blocks are
    only sound if they consume the generator exactly as the per-tuple
    policy's scalar draws would.
    """
    if not HAVE_NUMPY:
        return False
    cached = _BLOCK_DRAW_OK.get(bound)
    if cached is None:
        probe_block = _np.random.default_rng(987654321)
        probe_scalar = _np.random.default_rng(987654321)
        block = probe_block.integers(bound, size=64).tolist()
        scalars = [int(probe_scalar.integers(bound)) for _ in range(64)]
        cached = (
            block == scalars
            and probe_block.bit_generator.state == probe_scalar.bit_generator.state
        )
        _BLOCK_DRAW_OK[bound] = cached
    return cached


def rand_chunk_run(
    chunks: Iterable[StreamChunk],
    window: int,
    warmup: int,
    *,
    capacity: int,
    variable: bool,
    count_simultaneous: bool,
    rng_r,
    rng_s=None,
    r_departures: Optional[list] = None,
    s_departures: Optional[list] = None,
    sampler: Optional[Callable] = None,
    sample_every: int = 0,
) -> LaneTotals:
    """RAND over columnar chunks, bit-identical to the per-tuple run.

    ``rng_r``/``rng_s`` are the *policy instances'* own generators (the
    S one is ``None`` on a shared pool), so the lane consumes the same
    draw sequence the per-tuple contests would.  Victim selection
    replicates slot-index draws against a swap-remove slot array of
    arrival times; keys resolve through a ``window``-sized ring.
    """
    if variable:
        return _rand_variable(
            chunks, window, warmup, capacity, count_simultaneous, rng_r,
            r_departures, s_departures, sampler, sample_every,
        )
    return _rand_fixed(
        chunks, window, warmup, capacity, count_simultaneous, rng_r, rng_s,
        r_departures, s_departures, sampler, sample_every,
    )


def _rand_fixed(
    chunks, window, warmup, capacity, count_sim, rng_r, rng_s,
    r_departures, s_departures, sampler, sample_every,
):
    half = capacity // 2
    bound = half + 1  # residents (always exactly `half` in a contest) + newcomer
    use_block = _block_draws_equivalent(bound)
    block = _DRAW_BLOCK if use_block else 1

    r_counts: dict = {}
    s_counts: dict = {}
    r_ring: list = [None] * window  # arrival % window -> key
    s_ring: list = [None] * window
    r_pos: list = [-1] * window  # arrival % window -> slot index (-1 = gone)
    s_pos: list = [-1] * window
    r_slots: list = []  # slot index -> arrival, engine's swap-remove order
    s_slots: list = []
    buf_r: list = []
    buf_s: list = []
    ir = len(buf_r)
    is_ = len(buf_s)

    output = total_output = simultaneous_total = 0
    rej_r = rej_s = ev_r = ev_s = exp_r = exp_s = 0
    length = 0
    track = r_departures is not None

    r_get = r_counts.get
    s_get = s_counts.get

    for chunk in chunks:
        r_keys = chunk.r_list()
        s_keys = chunk.s_list()
        base = chunk.start
        for i in range(chunk.length):
            t = base + i
            idx = t % window
            # 1. expiry: the arrival at t - window, if still resident.
            if t >= window:
                slot = r_pos[idx]
                if slot >= 0:
                    key = r_ring[idx]
                    last = r_slots[-1]
                    r_slots[slot] = last
                    r_pos[last % window] = slot
                    r_slots.pop()
                    r_pos[idx] = -1
                    remaining = r_counts[key] - 1
                    if remaining:
                        r_counts[key] = remaining
                    else:
                        del r_counts[key]
                    exp_r += 1
                slot = s_pos[idx]
                if slot >= 0:
                    key = s_ring[idx]
                    last = s_slots[-1]
                    s_slots[slot] = last
                    s_pos[last % window] = slot
                    s_slots.pop()
                    s_pos[idx] = -1
                    remaining = s_counts[key] - 1
                    if remaining:
                        s_counts[key] = remaining
                    else:
                        del s_counts[key]
                    exp_s += 1

            r_key = r_keys[i]
            s_key = s_keys[i]
            r_ring[idx] = r_key
            s_ring[idx] = s_key

            # 2. probes (before either same-tick admission).
            matched = s_get(r_key, 0) + r_get(s_key, 0)
            if count_sim and r_key == s_key:
                matched += 1
                simultaneous_total += 1
            total_output += matched
            if t >= warmup:
                output += matched

            # 3. admissions: R first, then S.
            if len(r_slots) < half:
                r_pos[idx] = len(r_slots)
                r_slots.append(t)
                r_counts[r_key] = r_get(r_key, 0) + 1
            else:
                if ir >= len(buf_r):
                    buf_r = rng_r.integers(bound, size=block).tolist()
                    ir = 0
                victim = buf_r[ir]
                ir += 1
                if victim == half:  # the newcomer itself was drawn
                    rej_r += 1
                    if track:
                        r_departures[t] = t
                else:
                    arrival = r_slots[victim]
                    vidx = arrival % window
                    key = r_ring[vidx]
                    last = r_slots[-1]
                    r_slots[victim] = last
                    r_pos[last % window] = victim
                    r_slots.pop()
                    r_pos[vidx] = -1
                    remaining = r_counts[key] - 1
                    if remaining:
                        r_counts[key] = remaining
                    else:
                        del r_counts[key]
                    ev_r += 1
                    if track:
                        r_departures[arrival] = t
                    r_pos[idx] = len(r_slots)
                    r_slots.append(t)
                    r_counts[r_key] = r_get(r_key, 0) + 1

            if len(s_slots) < half:
                s_pos[idx] = len(s_slots)
                s_slots.append(t)
                s_counts[s_key] = s_get(s_key, 0) + 1
            else:
                if is_ >= len(buf_s):
                    buf_s = rng_s.integers(bound, size=block).tolist()
                    is_ = 0
                victim = buf_s[is_]
                is_ += 1
                if victim == half:
                    rej_s += 1
                    if track:
                        s_departures[t] = t
                else:
                    arrival = s_slots[victim]
                    vidx = arrival % window
                    key = s_ring[vidx]
                    last = s_slots[-1]
                    s_slots[victim] = last
                    s_pos[last % window] = victim
                    s_slots.pop()
                    s_pos[vidx] = -1
                    remaining = s_counts[key] - 1
                    if remaining:
                        s_counts[key] = remaining
                    else:
                        del s_counts[key]
                    ev_s += 1
                    if track:
                        s_departures[arrival] = t
                    s_pos[idx] = len(s_slots)
                    s_slots.append(t)
                    s_counts[s_key] = s_get(s_key, 0) + 1

            if sample_every and not t % sample_every:
                sampler(t, len(r_slots), len(s_slots))
        length = base + chunk.length

    return LaneTotals(
        output, total_output, simultaneous_total, length,
        rej_r, rej_s, ev_r, ev_s, exp_r, exp_s, len(r_slots), len(s_slots),
    )


def _rand_variable(
    chunks, window, warmup, capacity, count_sim, rng,
    r_departures, s_departures, sampler, sample_every,
):
    bound = capacity + 1  # pool residents (always `capacity` in a contest) + newcomer
    use_block = _block_draws_equivalent(bound)
    block = _DRAW_BLOCK if use_block else 1

    r_counts: dict = {}
    s_counts: dict = {}
    r_ring: list = [None] * window
    s_ring: list = [None] * window
    r_pos: list = [-1] * window
    s_pos: list = [-1] * window
    r_slots: list = []
    s_slots: list = []
    buf: list = []
    ib = 0

    output = total_output = simultaneous_total = 0
    rej_r = rej_s = ev_r = ev_s = exp_r = exp_s = 0
    length = 0
    track = r_departures is not None

    r_get = r_counts.get
    s_get = s_counts.get

    def evict(index, now):
        """Displace the pool resident at RAND's flattened slot index.

        The draw walks R's slot array then S's — the order of
        ``JoinMemory.eviction_candidates`` on a shared pool.
        """
        nonlocal ev_r, ev_s
        if index < len(r_slots):
            arrival = r_slots[index]
            vidx = arrival % window
            key = r_ring[vidx]
            last = r_slots[-1]
            r_slots[index] = last
            r_pos[last % window] = index
            r_slots.pop()
            r_pos[vidx] = -1
            remaining = r_counts[key] - 1
            if remaining:
                r_counts[key] = remaining
            else:
                del r_counts[key]
            ev_r += 1
            if track:
                r_departures[arrival] = now
        else:
            index -= len(r_slots)
            arrival = s_slots[index]
            vidx = arrival % window
            key = s_ring[vidx]
            last = s_slots[-1]
            s_slots[index] = last
            s_pos[last % window] = index
            s_slots.pop()
            s_pos[vidx] = -1
            remaining = s_counts[key] - 1
            if remaining:
                s_counts[key] = remaining
            else:
                del s_counts[key]
            ev_s += 1
            if track:
                s_departures[arrival] = now

    for chunk in chunks:
        r_keys = chunk.r_list()
        s_keys = chunk.s_list()
        base = chunk.start
        for i in range(chunk.length):
            t = base + i
            idx = t % window
            if t >= window:
                slot = r_pos[idx]
                if slot >= 0:
                    key = r_ring[idx]
                    last = r_slots[-1]
                    r_slots[slot] = last
                    r_pos[last % window] = slot
                    r_slots.pop()
                    r_pos[idx] = -1
                    remaining = r_counts[key] - 1
                    if remaining:
                        r_counts[key] = remaining
                    else:
                        del r_counts[key]
                    exp_r += 1
                slot = s_pos[idx]
                if slot >= 0:
                    key = s_ring[idx]
                    last = s_slots[-1]
                    s_slots[slot] = last
                    s_pos[last % window] = slot
                    s_slots.pop()
                    s_pos[idx] = -1
                    remaining = s_counts[key] - 1
                    if remaining:
                        s_counts[key] = remaining
                    else:
                        del s_counts[key]
                    exp_s += 1

            r_key = r_keys[i]
            s_key = s_keys[i]
            r_ring[idx] = r_key
            s_ring[idx] = s_key

            matched = s_get(r_key, 0) + r_get(s_key, 0)
            if count_sim and r_key == s_key:
                matched += 1
                simultaneous_total += 1
            total_output += matched
            if t >= warmup:
                output += matched

            # R admission against the shared pool.
            if len(r_slots) + len(s_slots) < capacity:
                r_pos[idx] = len(r_slots)
                r_slots.append(t)
                r_counts[r_key] = r_get(r_key, 0) + 1
            else:
                if ib >= len(buf):
                    buf = rng.integers(bound, size=block).tolist()
                    ib = 0
                victim = buf[ib]
                ib += 1
                if victim == capacity:
                    rej_r += 1
                    if track:
                        r_departures[t] = t
                else:
                    evict(victim, t)
                    r_pos[idx] = len(r_slots)
                    r_slots.append(t)
                    r_counts[r_key] = r_get(r_key, 0) + 1

            # S admission against the shared pool.
            if len(r_slots) + len(s_slots) < capacity:
                s_pos[idx] = len(s_slots)
                s_slots.append(t)
                s_counts[s_key] = s_get(s_key, 0) + 1
            else:
                if ib >= len(buf):
                    buf = rng.integers(bound, size=block).tolist()
                    ib = 0
                victim = buf[ib]
                ib += 1
                if victim == capacity:
                    rej_s += 1
                    if track:
                        s_departures[t] = t
                else:
                    evict(victim, t)
                    s_pos[idx] = len(s_slots)
                    s_slots.append(t)
                    s_counts[s_key] = s_get(s_key, 0) + 1

            if sample_every and not t % sample_every:
                sampler(t, len(r_slots), len(s_slots))
        length = base + chunk.length

    return LaneTotals(
        output, total_output, simultaneous_total, length,
        rej_r, rej_s, ev_r, ev_s, exp_r, exp_s, len(r_slots), len(s_slots),
    )


# ----------------------------------------------------------------------
# PROB
# ----------------------------------------------------------------------

def prob_chunk_run(
    chunks: Iterable[StreamChunk],
    window: int,
    warmup: int,
    *,
    capacity: int,
    variable: bool,
    count_simultaneous: bool,
    probs_r: dict,
    probs_s: dict,
    r_departures: Optional[list] = None,
    s_departures: Optional[list] = None,
    sampler: Optional[Callable] = None,
    sample_every: int = 0,
) -> LaneTotals:
    """PROB over columnar chunks, bit-identical to the per-tuple run.

    ``probs_r``/``probs_s`` map a key to the *partner* probability of an
    R-side / S-side tuple carrying it (``p_S`` / ``p_R`` — the policies'
    static caches).  Candidate priorities are gathered per chunk; the
    weakest resident comes from a lazy ``(priority, arrival)`` min-heap,
    which orders exactly like ``ProbPolicy``'s record heap because
    per-side arrivals are unique.
    """
    if variable:
        return _prob_variable(
            chunks, window, warmup, capacity, count_simultaneous,
            probs_r, probs_s, r_departures, s_departures, sampler, sample_every,
        )
    return _prob_fixed(
        chunks, window, warmup, capacity, count_simultaneous,
        probs_r, probs_s, r_departures, s_departures, sampler, sample_every,
    )


def _prob_fixed(
    chunks, window, warmup, capacity, count_sim,
    probs_r, probs_s, r_departures, s_departures, sampler, sample_every,
):
    half = capacity // 2
    dense_r = _dense_from_dict(probs_r)
    dense_s = _dense_from_dict(probs_s)

    r_counts: dict = {}
    s_counts: dict = {}
    r_ring: list = [None] * window
    s_ring: list = [None] * window
    r_alive: set = set()  # resident arrival times
    s_alive: set = set()
    r_heap: list = []  # (partner probability, arrival); lazy deletions
    s_heap: list = []
    r_dead = s_dead = 0

    output = total_output = simultaneous_total = 0
    rej_r = rej_s = ev_r = ev_s = exp_r = exp_s = 0
    length = 0
    track = r_departures is not None

    r_get = r_counts.get
    s_get = s_counts.get
    heappush = heapq.heappush
    heappop = heapq.heappop

    for chunk in chunks:
        r_keys = chunk.r_list()
        s_keys = chunk.s_list()
        cp_r = _prob_column(chunk.r_keys, r_keys, dense_r, probs_r)
        cp_s = _prob_column(chunk.s_keys, s_keys, dense_s, probs_s)
        base = chunk.start
        for i in range(chunk.length):
            t = base + i
            idx = t % window
            if t >= window:
                old = t - window
                if old in r_alive:
                    r_alive.remove(old)
                    key = r_ring[idx]
                    remaining = r_counts[key] - 1
                    if remaining:
                        r_counts[key] = remaining
                    else:
                        del r_counts[key]
                    exp_r += 1
                    # The heap entry just went stale; compact like
                    # ProbPolicy.on_remove (order-preserving, so
                    # decisions are unaffected — this is purely a
                    # memory bound for long streams).
                    r_dead += 1
                    if r_dead > 64 and 2 * r_dead > len(r_heap):
                        r_heap = [e for e in r_heap if e[1] in r_alive]
                        heapq.heapify(r_heap)
                        r_dead = 0
                if old in s_alive:
                    s_alive.remove(old)
                    key = s_ring[idx]
                    remaining = s_counts[key] - 1
                    if remaining:
                        s_counts[key] = remaining
                    else:
                        del s_counts[key]
                    exp_s += 1
                    s_dead += 1
                    if s_dead > 64 and 2 * s_dead > len(s_heap):
                        s_heap = [e for e in s_heap if e[1] in s_alive]
                        heapq.heapify(s_heap)
                        s_dead = 0

            r_key = r_keys[i]
            s_key = s_keys[i]
            r_ring[idx] = r_key
            s_ring[idx] = s_key

            matched = s_get(r_key, 0) + r_get(s_key, 0)
            if count_sim and r_key == s_key:
                matched += 1
                simultaneous_total += 1
            total_output += matched
            if t >= warmup:
                output += matched

            # R admission.
            cp = cp_r[i]
            if len(r_alive) < half:
                r_alive.add(t)
                heappush(r_heap, (cp, t))
                r_counts[r_key] = r_get(r_key, 0) + 1
            else:
                while True:
                    wp, wa = r_heap[0]
                    if wa in r_alive:
                        break
                    heappop(r_heap)
                    r_dead -= 1
                # later_arrival_wins(wp, wa, cp, t) with wa < t always
                # (own side only, newcomer not yet inserted).
                if wp <= cp:
                    heappop(r_heap)
                    r_alive.remove(wa)
                    key = r_ring[wa % window]
                    remaining = r_counts[key] - 1
                    if remaining:
                        r_counts[key] = remaining
                    else:
                        del r_counts[key]
                    ev_r += 1
                    if track:
                        r_departures[wa] = t
                    r_alive.add(t)
                    heappush(r_heap, (cp, t))
                    r_counts[r_key] = r_get(r_key, 0) + 1
                else:
                    rej_r += 1
                    if track:
                        r_departures[t] = t

            # S admission.
            cp = cp_s[i]
            if len(s_alive) < half:
                s_alive.add(t)
                heappush(s_heap, (cp, t))
                s_counts[s_key] = s_get(s_key, 0) + 1
            else:
                while True:
                    wp, wa = s_heap[0]
                    if wa in s_alive:
                        break
                    heappop(s_heap)
                    s_dead -= 1
                if wp <= cp:
                    heappop(s_heap)
                    s_alive.remove(wa)
                    key = s_ring[wa % window]
                    remaining = s_counts[key] - 1
                    if remaining:
                        s_counts[key] = remaining
                    else:
                        del s_counts[key]
                    ev_s += 1
                    if track:
                        s_departures[wa] = t
                    s_alive.add(t)
                    heappush(s_heap, (cp, t))
                    s_counts[s_key] = s_get(s_key, 0) + 1
                else:
                    rej_s += 1
                    if track:
                        s_departures[t] = t

            if sample_every and not t % sample_every:
                sampler(t, len(r_alive), len(s_alive))
        length = base + chunk.length

    return LaneTotals(
        output, total_output, simultaneous_total, length,
        rej_r, rej_s, ev_r, ev_s, exp_r, exp_s, len(r_alive), len(s_alive),
    )


def _prob_variable(
    chunks, window, warmup, capacity, count_sim,
    probs_r, probs_s, r_departures, s_departures, sampler, sample_every,
):
    dense_r = _dense_from_dict(probs_r)
    dense_s = _dense_from_dict(probs_s)

    r_counts: dict = {}
    s_counts: dict = {}
    r_ring: list = [None] * window
    s_ring: list = [None] * window
    r_alive: set = set()
    s_alive: set = set()
    # One heap for the shared pool: (priority, arrival, side) with R=0 /
    # S=1 — the same pop order as ProbPolicy's sequence numbers, because
    # an equal (priority, arrival) pair can only be the same tick's R
    # and S admissions, and R is admitted first.
    heap: list = []
    dead = 0

    output = total_output = simultaneous_total = 0
    rej_r = rej_s = ev_r = ev_s = exp_r = exp_s = 0
    length = 0
    track = r_departures is not None

    r_get = r_counts.get
    s_get = s_counts.get
    heappush = heapq.heappush
    heappop = heapq.heappop

    for chunk in chunks:
        r_keys = chunk.r_list()
        s_keys = chunk.s_list()
        cp_r = _prob_column(chunk.r_keys, r_keys, dense_r, probs_r)
        cp_s = _prob_column(chunk.s_keys, s_keys, dense_s, probs_s)
        base = chunk.start
        for i in range(chunk.length):
            t = base + i
            idx = t % window
            if t >= window:
                old = t - window
                if old in r_alive:
                    r_alive.remove(old)
                    key = r_ring[idx]
                    remaining = r_counts[key] - 1
                    if remaining:
                        r_counts[key] = remaining
                    else:
                        del r_counts[key]
                    exp_r += 1
                    dead += 1
                if old in s_alive:
                    s_alive.remove(old)
                    key = s_ring[idx]
                    remaining = s_counts[key] - 1
                    if remaining:
                        s_counts[key] = remaining
                    else:
                        del s_counts[key]
                    exp_s += 1
                    dead += 1
                if dead > 64 and 2 * dead > len(heap):
                    heap = [
                        e for e in heap
                        if e[1] in (r_alive if e[2] == 0 else s_alive)
                    ]
                    heapq.heapify(heap)
                    dead = 0

            r_key = r_keys[i]
            s_key = s_keys[i]
            r_ring[idx] = r_key
            s_ring[idx] = s_key

            matched = s_get(r_key, 0) + r_get(s_key, 0)
            if count_sim and r_key == s_key:
                matched += 1
                simultaneous_total += 1
            total_output += matched
            if t >= warmup:
                output += matched

            # R admission against the shared pool.
            cp = cp_r[i]
            if len(r_alive) + len(s_alive) < capacity:
                r_alive.add(t)
                heappush(heap, (cp, t, 0))
                r_counts[r_key] = r_get(r_key, 0) + 1
            else:
                while True:
                    wp, wa, wside = heap[0]
                    if wa in (r_alive if wside == 0 else s_alive):
                        break
                    heappop(heap)
                    dead -= 1
                # Full later_arrival_wins: the weakest may share the
                # newcomer's tick (this tick's R during the S contest).
                if wp < cp or (wp == cp and wa < t):
                    heappop(heap)
                    if wside == 0:
                        r_alive.remove(wa)
                        key = r_ring[wa % window]
                        remaining = r_counts[key] - 1
                        if remaining:
                            r_counts[key] = remaining
                        else:
                            del r_counts[key]
                        ev_r += 1
                        if track:
                            r_departures[wa] = t
                    else:
                        s_alive.remove(wa)
                        key = s_ring[wa % window]
                        remaining = s_counts[key] - 1
                        if remaining:
                            s_counts[key] = remaining
                        else:
                            del s_counts[key]
                        ev_s += 1
                        if track:
                            s_departures[wa] = t
                    r_alive.add(t)
                    heappush(heap, (cp, t, 0))
                    r_counts[r_key] = r_get(r_key, 0) + 1
                else:
                    rej_r += 1
                    if track:
                        r_departures[t] = t

            # S admission against the shared pool.
            cp = cp_s[i]
            if len(r_alive) + len(s_alive) < capacity:
                s_alive.add(t)
                heappush(heap, (cp, t, 1))
                s_counts[s_key] = s_get(s_key, 0) + 1
            else:
                while True:
                    wp, wa, wside = heap[0]
                    if wa in (r_alive if wside == 0 else s_alive):
                        break
                    heappop(heap)
                    dead -= 1
                if wp < cp or (wp == cp and wa < t):
                    heappop(heap)
                    if wside == 0:
                        r_alive.remove(wa)
                        key = r_ring[wa % window]
                        remaining = r_counts[key] - 1
                        if remaining:
                            r_counts[key] = remaining
                        else:
                            del r_counts[key]
                        ev_r += 1
                        if track:
                            r_departures[wa] = t
                    else:
                        s_alive.remove(wa)
                        key = s_ring[wa % window]
                        remaining = s_counts[key] - 1
                        if remaining:
                            s_counts[key] = remaining
                        else:
                            del s_counts[key]
                        ev_s += 1
                        if track:
                            s_departures[wa] = t
                    s_alive.add(t)
                    heappush(heap, (cp, t, 1))
                    s_counts[s_key] = s_get(s_key, 0) + 1
                else:
                    rej_s += 1
                    if track:
                        s_departures[t] = t

            if sample_every and not t % sample_every:
                sampler(t, len(r_alive), len(s_alive))
        length = base + chunk.length

    return LaneTotals(
        output, total_output, simultaneous_total, length,
        rej_r, rej_s, ev_r, ev_s, exp_r, exp_s, len(r_alive), len(s_alive),
    )


# ----------------------------------------------------------------------
# LIFE
# ----------------------------------------------------------------------

def life_chunk_run(
    chunks: Iterable[StreamChunk],
    window: int,
    warmup: int,
    *,
    capacity: int,
    variable: bool,
    count_simultaneous: bool,
    probs_r: dict,
    probs_s: dict,
    r_departures: Optional[list] = None,
    s_departures: Optional[list] = None,
    sampler: Optional[Callable] = None,
    sample_every: int = 0,
) -> LaneTotals:
    """LIFE over columnar chunks, bit-identical to the per-tuple run.

    The weakest-victim scan walks per-key aggregate cells —
    ``key -> (arrival deque, partner probability)`` — so each distinct
    resident key costs one deque peek and one float multiply.  The
    arithmetic is exactly ``LifePolicy._weakest_on``'s
    ``(oldest_arrival + window - now) * p`` (IEEE-identical), and the
    per-chunk candidate column is ``window * p`` gathered from the same
    tables, so every contest decides exactly as the per-tuple policy.
    """
    if variable:
        return _life_variable(
            chunks, window, warmup, capacity, count_simultaneous,
            probs_r, probs_s, r_departures, s_departures, sampler, sample_every,
        )
    return _life_fixed(
        chunks, window, warmup, capacity, count_simultaneous,
        probs_r, probs_s, r_departures, s_departures, sampler, sample_every,
    )


def _life_fixed(
    chunks, window, warmup, capacity, count_sim,
    probs_r, probs_s, r_departures, s_departures, sampler, sample_every,
):
    half = capacity // 2
    dense_r = _dense_from_dict(probs_r)
    dense_s = _dense_from_dict(probs_s)
    cand_dense_r = dense_r * window if dense_r is not None else None
    cand_dense_s = dense_s * window if dense_s is not None else None
    cand_probs_r = {key: window * p for key, p in probs_r.items()}
    cand_probs_s = {key: window * p for key, p in probs_s.items()}

    # key -> (deque of resident arrivals, partner probability).  All
    # removals take the key's oldest arrival (see module docstring), so
    # popleft keeps the deque equal to the memory's per-key FIFO.
    r_cells: dict = {}
    s_cells: dict = {}
    r_ring: list = [None] * window
    s_ring: list = [None] * window
    r_len = s_len = 0

    output = total_output = simultaneous_total = 0
    rej_r = rej_s = ev_r = ev_s = exp_r = exp_s = 0
    length = 0
    track = r_departures is not None

    for chunk in chunks:
        r_keys = chunk.r_list()
        s_keys = chunk.s_list()
        p_r = _prob_column(chunk.r_keys, r_keys, dense_r, probs_r)
        p_s = _prob_column(chunk.s_keys, s_keys, dense_s, probs_s)
        candp_r = _prob_column(chunk.r_keys, r_keys, cand_dense_r, cand_probs_r)
        candp_s = _prob_column(chunk.s_keys, s_keys, cand_dense_s, cand_probs_s)
        base = chunk.start
        for i in range(chunk.length):
            t = base + i
            idx = t % window
            if t >= window:
                old = t - window
                key = r_ring[idx]
                cell = r_cells.get(key)
                if cell is not None and cell[0][0] == old:
                    dq = cell[0]
                    dq.popleft()
                    if not dq:
                        del r_cells[key]
                    exp_r += 1
                    r_len -= 1
                key = s_ring[idx]
                cell = s_cells.get(key)
                if cell is not None and cell[0][0] == old:
                    dq = cell[0]
                    dq.popleft()
                    if not dq:
                        del s_cells[key]
                    exp_s += 1
                    s_len -= 1

            r_key = r_keys[i]
            s_key = s_keys[i]
            r_ring[idx] = r_key
            s_ring[idx] = s_key

            cell = s_cells.get(r_key)
            matched = len(cell[0]) if cell is not None else 0
            cell = r_cells.get(s_key)
            if cell is not None:
                matched += len(cell[0])
            if count_sim and r_key == s_key:
                matched += 1
                simultaneous_total += 1
            total_output += matched
            if t >= warmup:
                output += matched

            # R admission.
            if r_len < half:
                cell = r_cells.get(r_key)
                if cell is None:
                    r_cells[r_key] = (deque((t,)), p_r[i])
                else:
                    cell[0].append(t)
                r_len += 1
            else:
                # Weakest-victim scan: once per contest, one deque peek
                # and one multiply per distinct resident key.  First-
                # seen wins exact ties, but per-side arrivals are
                # unique, so (priority, arrival) never ties and scan
                # order is immaterial.
                offset = window - t
                best_key = None
                best_a = -1
                best_pri = 0.0
                for key, cell in r_cells.items():
                    a0 = cell[0][0]
                    pri = (a0 + offset) * cell[1]
                    if best_a < 0 or pri < best_pri or (
                        pri == best_pri and a0 < best_a
                    ):
                        best_key = key
                        best_a = a0
                        best_pri = pri
                # later_arrival_wins(best_pri, best_a, cand, t) with
                # best_a < t always (own side only).
                if best_pri <= candp_r[i]:
                    dq = r_cells[best_key][0]
                    dq.popleft()
                    if not dq:
                        del r_cells[best_key]
                    ev_r += 1
                    if track:
                        r_departures[best_a] = t
                    cell = r_cells.get(r_key)
                    if cell is None:
                        r_cells[r_key] = (deque((t,)), p_r[i])
                    else:
                        cell[0].append(t)
                else:
                    rej_r += 1
                    if track:
                        r_departures[t] = t

            # S admission.
            if s_len < half:
                cell = s_cells.get(s_key)
                if cell is None:
                    s_cells[s_key] = (deque((t,)), p_s[i])
                else:
                    cell[0].append(t)
                s_len += 1
            else:
                offset = window - t
                best_key = None
                best_a = -1
                best_pri = 0.0
                for key, cell in s_cells.items():
                    a0 = cell[0][0]
                    pri = (a0 + offset) * cell[1]
                    if best_a < 0 or pri < best_pri or (
                        pri == best_pri and a0 < best_a
                    ):
                        best_key = key
                        best_a = a0
                        best_pri = pri
                if best_pri <= candp_s[i]:
                    dq = s_cells[best_key][0]
                    dq.popleft()
                    if not dq:
                        del s_cells[best_key]
                    ev_s += 1
                    if track:
                        s_departures[best_a] = t
                    cell = s_cells.get(s_key)
                    if cell is None:
                        s_cells[s_key] = (deque((t,)), p_s[i])
                    else:
                        cell[0].append(t)
                else:
                    rej_s += 1
                    if track:
                        s_departures[t] = t

            if sample_every and not t % sample_every:
                sampler(t, r_len, s_len)
        length = base + chunk.length

    return LaneTotals(
        output, total_output, simultaneous_total, length,
        rej_r, rej_s, ev_r, ev_s, exp_r, exp_s, r_len, s_len,
    )


def _life_variable(
    chunks, window, warmup, capacity, count_sim,
    probs_r, probs_s, r_departures, s_departures, sampler, sample_every,
):
    dense_r = _dense_from_dict(probs_r)
    dense_s = _dense_from_dict(probs_s)
    cand_dense_r = dense_r * window if dense_r is not None else None
    cand_dense_s = dense_s * window if dense_s is not None else None
    cand_probs_r = {key: window * p for key, p in probs_r.items()}
    cand_probs_s = {key: window * p for key, p in probs_s.items()}

    r_cells: dict = {}
    s_cells: dict = {}
    r_ring: list = [None] * window
    s_ring: list = [None] * window
    r_len = s_len = 0

    output = total_output = simultaneous_total = 0
    rej_r = rej_s = ev_r = ev_s = exp_r = exp_s = 0
    length = 0
    track = r_departures is not None

    for chunk in chunks:
        r_keys = chunk.r_list()
        s_keys = chunk.s_list()
        p_r = _prob_column(chunk.r_keys, r_keys, dense_r, probs_r)
        p_s = _prob_column(chunk.s_keys, s_keys, dense_s, probs_s)
        candp_r = _prob_column(chunk.r_keys, r_keys, cand_dense_r, cand_probs_r)
        candp_s = _prob_column(chunk.s_keys, s_keys, cand_dense_s, cand_probs_s)
        base = chunk.start
        for i in range(chunk.length):
            t = base + i
            idx = t % window
            if t >= window:
                old = t - window
                key = r_ring[idx]
                cell = r_cells.get(key)
                if cell is not None and cell[0][0] == old:
                    dq = cell[0]
                    dq.popleft()
                    if not dq:
                        del r_cells[key]
                    exp_r += 1
                    r_len -= 1
                key = s_ring[idx]
                cell = s_cells.get(key)
                if cell is not None and cell[0][0] == old:
                    dq = cell[0]
                    dq.popleft()
                    if not dq:
                        del s_cells[key]
                    exp_s += 1
                    s_len -= 1

            r_key = r_keys[i]
            s_key = s_keys[i]
            r_ring[idx] = r_key
            s_ring[idx] = s_key

            cell = s_cells.get(r_key)
            matched = len(cell[0]) if cell is not None else 0
            cell = r_cells.get(s_key)
            if cell is not None:
                matched += len(cell[0])
            if count_sim and r_key == s_key:
                matched += 1
                simultaneous_total += 1
            total_output += matched
            if t >= warmup:
                output += matched

            # R admission against the shared pool.
            if r_len + s_len < capacity:
                cell = r_cells.get(r_key)
                if cell is None:
                    r_cells[r_key] = (deque((t,)), p_r[i])
                else:
                    cell[0].append(t)
                r_len += 1
            else:
                # Pool-wide scan, R cells first then S — the fold order
                # of LifePolicy._weakest over eviction_candidates; a
                # cross-side (priority, arrival) tie keeps the R
                # contender, exactly as the sequential fold does.
                offset = window - t
                best_side = 0
                best_key = None
                best_a = -1
                best_pri = 0.0
                for key, cell in r_cells.items():
                    a0 = cell[0][0]
                    pri = (a0 + offset) * cell[1]
                    if best_a < 0 or pri < best_pri or (
                        pri == best_pri and a0 < best_a
                    ):
                        best_key = key
                        best_a = a0
                        best_pri = pri
                for key, cell in s_cells.items():
                    a0 = cell[0][0]
                    pri = (a0 + offset) * cell[1]
                    if best_a < 0 or pri < best_pri or (
                        pri == best_pri and a0 < best_a
                    ):
                        best_side = 1
                        best_key = key
                        best_a = a0
                        best_pri = pri
                cand = candp_r[i]
                # Full later_arrival_wins: the weakest may share the
                # newcomer's tick (this tick's R during the S contest).
                if best_pri < cand or (best_pri == cand and best_a < t):
                    cells = r_cells if best_side == 0 else s_cells
                    dq = cells[best_key][0]
                    dq.popleft()
                    if not dq:
                        del cells[best_key]
                    if best_side == 0:
                        ev_r += 1
                        r_len -= 1
                        if track:
                            r_departures[best_a] = t
                    else:
                        ev_s += 1
                        s_len -= 1
                        if track:
                            s_departures[best_a] = t
                    cell = r_cells.get(r_key)
                    if cell is None:
                        r_cells[r_key] = (deque((t,)), p_r[i])
                    else:
                        cell[0].append(t)
                    r_len += 1
                else:
                    rej_r += 1
                    if track:
                        r_departures[t] = t

            # S admission against the shared pool.
            if r_len + s_len < capacity:
                cell = s_cells.get(s_key)
                if cell is None:
                    s_cells[s_key] = (deque((t,)), p_s[i])
                else:
                    cell[0].append(t)
                s_len += 1
            else:
                offset = window - t
                best_side = 0
                best_key = None
                best_a = -1
                best_pri = 0.0
                for key, cell in r_cells.items():
                    a0 = cell[0][0]
                    pri = (a0 + offset) * cell[1]
                    if best_a < 0 or pri < best_pri or (
                        pri == best_pri and a0 < best_a
                    ):
                        best_key = key
                        best_a = a0
                        best_pri = pri
                for key, cell in s_cells.items():
                    a0 = cell[0][0]
                    pri = (a0 + offset) * cell[1]
                    if best_a < 0 or pri < best_pri or (
                        pri == best_pri and a0 < best_a
                    ):
                        best_side = 1
                        best_key = key
                        best_a = a0
                        best_pri = pri
                cand = candp_s[i]
                if best_pri < cand or (best_pri == cand and best_a < t):
                    cells = r_cells if best_side == 0 else s_cells
                    dq = cells[best_key][0]
                    dq.popleft()
                    if not dq:
                        del cells[best_key]
                    if best_side == 0:
                        ev_r += 1
                        r_len -= 1
                        if track:
                            r_departures[best_a] = t
                    else:
                        ev_s += 1
                        s_len -= 1
                        if track:
                            s_departures[best_a] = t
                    cell = s_cells.get(s_key)
                    if cell is None:
                        s_cells[s_key] = (deque((t,)), p_s[i])
                    else:
                        cell[0].append(t)
                    s_len += 1
                else:
                    rej_s += 1
                    if track:
                        s_departures[t] = t

            if sample_every and not t % sample_every:
                sampler(t, r_len, s_len)
        length = base + chunk.length

    return LaneTotals(
        output, total_output, simultaneous_total, length,
        rej_r, rej_s, ev_r, ev_s, exp_r, exp_s, r_len, s_len,
    )
