"""Closed-form retention benefit ``C_{m,n}(p)`` (Section 3.1.1).

Within a single Kurotowski component ``K(m, n)``, retaining ``p`` nodes
optimally means splitting them as evenly as possible between the two
partitions (an ``m' x n'`` complete bipartite subgraph has ``m' * n'``
edges, maximised when ``|m' - n'|`` is minimal subject to the partition
sizes).  The paper's closed form (w.l.o.g. ``m >= n``):

* ``p <= 2n``, ``p`` even:  ``(p/2)^2``
* ``p <= 2n``, ``p`` odd:   ``(p^2 - 1)/4``
* otherwise:                ``n * (p - n)``
"""

from __future__ import annotations

from .components import KurotowskiComponent


def retention_benefit(m: int, n: int, p: int) -> int:
    """Maximum edges retained when keeping ``p`` of ``K(m, n)``'s nodes.

    Raises
    ------
    ValueError
        If ``p`` is negative or exceeds ``m + n``.
    """
    if m < 0 or n < 0:
        raise ValueError(f"component sizes must be non-negative, got ({m}, {n})")
    if not 0 <= p <= m + n:
        raise ValueError(f"cannot retain {p} of {m + n} nodes")
    if m < n:
        m, n = n, m
    if p <= 2 * n:
        if p % 2 == 0:
            return (p // 2) ** 2
        return (p * p - 1) // 4
    return n * (p - n)


def retention_split(m: int, n: int, p: int) -> tuple[int, int]:
    """The optimal ``(m', n')`` split behind :func:`retention_benefit`.

    Returns how many nodes to keep from the A-partition (size ``m``) and
    the B-partition (size ``n``); ``m' * n' == retention_benefit(m, n, p)``.
    """
    if m < 0 or n < 0:
        raise ValueError(f"component sizes must be non-negative, got ({m}, {n})")
    if not 0 <= p <= m + n:
        raise ValueError(f"cannot retain {p} of {m + n} nodes")
    swapped = m < n
    big, small = (n, m) if swapped else (m, n)
    if p <= 2 * small:
        keep_big = (p + 1) // 2
        keep_small = p // 2
    else:
        keep_small = small
        keep_big = p - small
    if swapped:
        return keep_small, keep_big
    return keep_big, keep_small


def component_benefit(component: KurotowskiComponent, p: int) -> int:
    """``C_{m,n}(p)`` for a component object."""
    return retention_benefit(component.m, component.n, p)


def benefit_table(component: KurotowskiComponent) -> list[int]:
    """``C_{m,n}(p)`` for every ``p`` in ``0 .. m + n`` (DP inner loop)."""
    return [
        retention_benefit(component.m, component.n, p)
        for p in range(component.nodes + 1)
    ]
