"""Static join load shedding (Section 3.1): k-truncated joins.

* :func:`extract_components` — Kurotowski components of an equi-join;
* :func:`retention_benefit` — the closed form ``C_{m,n}(p)``;
* :func:`max_edges_retaining` / :func:`min_edges_lost_deleting` — the
  optimal ``O(c k^2)`` dynamic programs (dual / primal);
* :func:`max_edges_retaining_per_relation` — the ``(k_A, k_B)`` variant;
* :mod:`repro.core.static_join.multiway` — the NP-hard m-relation case
  and its m-approximation.
"""

from .components import (
    KurotowskiComponent,
    extract_components,
    total_edges,
    total_nodes,
)
from .dp import (
    RetentionPlan,
    greedy_min_degree_deletion,
    max_edges_retaining,
    max_edges_retaining_per_relation,
    min_edges_lost_deleting,
    random_deletion,
)
from .materialize import apply_plan, join_size
from .multiway import (
    MultiwayInstance,
    MultiwayPlan,
    approximation_ratio_bound,
    brute_force_optimal,
    independent_selection,
)
from .retention import (
    benefit_table,
    component_benefit,
    retention_benefit,
    retention_split,
)

__all__ = [
    "KurotowskiComponent",
    "MultiwayInstance",
    "MultiwayPlan",
    "RetentionPlan",
    "apply_plan",
    "approximation_ratio_bound",
    "benefit_table",
    "join_size",
    "brute_force_optimal",
    "component_benefit",
    "extract_components",
    "greedy_min_degree_deletion",
    "independent_selection",
    "max_edges_retaining",
    "max_edges_retaining_per_relation",
    "min_edges_lost_deleting",
    "random_deletion",
    "retention_benefit",
    "retention_split",
    "total_edges",
    "total_nodes",
]
