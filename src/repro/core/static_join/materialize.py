"""Materialising static shedding plans against actual relations.

The DP solvers work on Kurotowski component counts; deployed systems (the
sensor proxy of Section 3.1) must translate a :class:`RetentionPlan` back
into concrete tuples to request/keep.  Within one component all tuples
are interchangeable for the MAX-subset measure, so the first occurrences
of each key are kept (deterministic and order-preserving).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

from .components import KurotowskiComponent
from .dp import RetentionPlan


def apply_plan(
    relation_a: Iterable[Hashable],
    relation_b: Iterable[Hashable],
    components: Sequence[KurotowskiComponent],
    plan: RetentionPlan,
) -> tuple[list[Hashable], list[Hashable]]:
    """The truncated relations a retention plan prescribes.

    Parameters
    ----------
    relation_a / relation_b:
        The original relations (orders are preserved in the output).
    components:
        The components the plan was computed for (as returned by
        :func:`repro.core.static_join.extract_components` on the same
        relations).
    plan:
        A plan whose ``per_component`` entries align with ``components``.

    Raises
    ------
    ValueError
        If the plan does not align with the components, or the plan keeps
        more tuples of some key than the relation contains (a sign the
        plan was computed for different relations).
    """
    if len(plan.per_component) != len(components):
        raise ValueError(
            f"plan covers {len(plan.per_component)} components, "
            f"expected {len(components)}"
        )
    keep_a = {
        component.key: kept_a
        for component, (kept_a, _kept_b) in zip(components, plan.per_component)
    }
    keep_b = {
        component.key: kept_b
        for component, (_kept_a, kept_b) in zip(components, plan.per_component)
    }

    truncated_a = _keep_first(relation_a, keep_a, "A")
    truncated_b = _keep_first(relation_b, keep_b, "B")
    return truncated_a, truncated_b


def _keep_first(relation: Iterable[Hashable], budgets: dict, label: str) -> list:
    remaining = dict(budgets)
    kept: list = []
    for key in relation:
        if key not in remaining:
            raise ValueError(
                f"relation {label} contains key {key!r} absent from the plan"
            )
        if remaining[key] > 0:
            remaining[key] -= 1
            kept.append(key)
    shortfall = {key: count for key, count in remaining.items() if count > 0}
    if shortfall:
        raise ValueError(
            f"plan keeps more tuples than relation {label} holds for keys "
            f"{sorted(shortfall, key=repr)[:5]}"
        )
    return kept


def join_size(relation_a: Iterable[Hashable], relation_b: Iterable[Hashable]) -> int:
    """Equi-join output size of two (static) relations."""
    from collections import Counter

    counts_a = Counter(relation_a)
    counts_b = Counter(relation_b)
    return sum(count * counts_b.get(key, 0) for key, count in counts_a.items())
