"""Multi-relation static join shedding (Section 3.1.2).

For three or more relations the load-shedding problem is NP-hard (the
paper reduces from balanced biclique), so this module provides:

* the problem model for an m-way equi-join on a shared attribute
  (per-key tuple counts; output per key is the product of the counts);
* the paper's *independent-selection* m-approximation: each relation
  independently deletes the tuples whose solo removal loses the least
  output; the total loss is at most ``m`` times the optimal loss;
* an exhaustive solver for tiny instances, used to validate the
  approximation guarantee in tests.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from itertools import product
from math import prod
from typing import Hashable, Iterable, Sequence


@dataclass(frozen=True)
class MultiwayInstance:
    """An m-way equi-join instance in per-key count form.

    ``counts[i][key]`` is the number of tuples with join value ``key`` in
    relation ``i``; the exact join output is
    ``sum_key prod_i counts[i][key]``.
    """

    counts: tuple[dict, ...]

    @classmethod
    def from_relations(cls, relations: Sequence[Iterable[Hashable]]) -> "MultiwayInstance":
        if len(relations) < 2:
            raise ValueError("need at least two relations")
        return cls(tuple(dict(Counter(relation)) for relation in relations))

    @property
    def num_relations(self) -> int:
        return len(self.counts)

    def keys(self) -> set:
        out: set = set()
        for counts in self.counts:
            out.update(counts)
        return out

    def output_size(self, deletions: Sequence[dict] = ()) -> int:
        """Join size after deleting ``deletions[i][key]`` tuples per key."""
        total = 0
        for key in self.keys():
            term = 1
            for i, counts in enumerate(self.counts):
                remaining = counts.get(key, 0)
                if deletions:
                    remaining -= deletions[i].get(key, 0)
                if remaining < 0:
                    raise ValueError(
                        f"relation {i} deletes more {key!r}-tuples than it has"
                    )
                term *= remaining
            total += term
        return total

    def relation_size(self, i: int) -> int:
        return sum(self.counts[i].values())


@dataclass
class MultiwayPlan:
    """A deletion plan: per relation, per key, how many tuples to drop."""

    deletions: list[dict]
    output_size: int
    lost_output: int


def _solo_unit_loss(instance: MultiwayInstance, relation: int, key: Hashable) -> int:
    """Output lost by deleting ONE key-tuple from ``relation`` alone."""
    return prod(
        counts.get(key, 0)
        for i, counts in enumerate(instance.counts)
        if i != relation
    )


def independent_selection(
    instance: MultiwayInstance, budgets: Sequence[int]
) -> MultiwayPlan:
    """The paper's m-approximation.

    Each relation ``i`` deletes its ``budgets[i]`` cheapest tuples, where
    a tuple's cost is the output lost if it alone were removed (the
    product of the other relations' counts for its key).  The combined
    loss is at most ``sum_i p_i <= m * max_i p_i <= m * OPT``.
    """
    if len(budgets) != instance.num_relations:
        raise ValueError(
            f"need one budget per relation, got {len(budgets)} for "
            f"{instance.num_relations}"
        )
    deletions: list[dict] = []
    for i, budget in enumerate(budgets):
        size = instance.relation_size(i)
        if not 0 <= budget <= size:
            raise ValueError(f"relation {i}: cannot delete {budget} of {size}")
        # Cheapest-first greedy over (unit loss, key) tuples.
        costed: list[tuple[int, Hashable, int]] = [
            (_solo_unit_loss(instance, i, key), key, count)
            for key, count in instance.counts[i].items()
        ]
        costed.sort(key=lambda item: (item[0], repr(item[1])))
        plan: dict = {}
        remaining = budget
        for unit_loss, key, count in costed:
            if remaining == 0:
                break
            take = min(count, remaining)
            plan[key] = take
            remaining -= take
        deletions.append(plan)

    output = instance.output_size(deletions)
    full = instance.output_size()
    return MultiwayPlan(deletions=deletions, output_size=output, lost_output=full - output)


def brute_force_optimal(
    instance: MultiwayInstance, budgets: Sequence[int]
) -> MultiwayPlan:
    """Exhaustive optimum over per-key deletion counts (tiny instances).

    Within a relation, tuples of the same key are interchangeable, so the
    search enumerates per-key deletion *counts* summing to the budget —
    still exponential, but fine for the test-scale instances.
    """
    if len(budgets) != instance.num_relations:
        raise ValueError("need one budget per relation")

    def key_allocations(counts: dict, budget: int):
        keys = sorted(counts, key=repr)
        limits = [counts[key] for key in keys]

        def rec(index: int, left: int, acc: list[int]):
            if index == len(keys):
                if left == 0:
                    yield dict(zip(keys, acc))
                return
            max_here = min(limits[index], left)
            for take in range(max_here + 1):
                yield from rec(index + 1, left - take, acc + [take])

        yield from rec(0, budget, [])

    full = instance.output_size()
    best_output = -1
    best_plan: list[dict] = []
    spaces = [
        list(key_allocations(instance.counts[i], budgets[i]))
        for i in range(instance.num_relations)
    ]
    for combo in product(*spaces):
        output = instance.output_size(list(combo))
        if output > best_output:
            best_output = output
            best_plan = [dict(d) for d in combo]
    return MultiwayPlan(
        deletions=best_plan, output_size=best_output, lost_output=full - best_output
    )


def approximation_ratio_bound(instance: MultiwayInstance) -> int:
    """The guaranteed worst-case loss ratio of independent selection."""
    return instance.num_relations
