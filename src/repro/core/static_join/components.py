"""Kurotowski components of a two-relation equi-join (Section 3.1).

The bipartite join graph of an equi-join is a disjoint union of fully
connected bipartite components — one per join value — which the paper
calls *Kurotowski components* ``K(m, n)``.  All static load-shedding
algorithms operate on this compact representation rather than on the
tuples themselves: a value with ``m`` tuples in A and ``n`` in B
contributes ``m * n`` result tuples.

Values appearing in only one relation yield degenerate ``K(m, 0)`` /
``K(0, n)`` components; they matter for the *primal* (delete-k) problem
because deleting such tuples loses nothing.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence


@dataclass(frozen=True)
class KurotowskiComponent:
    """One join value's fully connected bipartite component ``K(m, n)``."""

    key: Hashable
    m: int  # tuples with this value in relation A
    n: int  # tuples with this value in relation B

    def __post_init__(self) -> None:
        if self.m < 0 or self.n < 0:
            raise ValueError(f"counts must be non-negative, got K({self.m}, {self.n})")

    @property
    def nodes(self) -> int:
        return self.m + self.n

    @property
    def edges(self) -> int:
        """Join result tuples contributed by this value."""
        return self.m * self.n


def extract_components(
    relation_a: Iterable[Hashable], relation_b: Iterable[Hashable]
) -> list[KurotowskiComponent]:
    """Group two relations' join-attribute values into components.

    The result is sorted by key representation for determinism; keys
    appearing in either relation produce a component.
    """
    counts_a = Counter(relation_a)
    counts_b = Counter(relation_b)
    keys = set(counts_a) | set(counts_b)
    return [
        KurotowskiComponent(key, counts_a.get(key, 0), counts_b.get(key, 0))
        for key in sorted(keys, key=repr)
    ]


def total_nodes(components: Sequence[KurotowskiComponent]) -> int:
    return sum(component.nodes for component in components)


def total_edges(components: Sequence[KurotowskiComponent]) -> int:
    """Size of the full (untruncated) join result."""
    return sum(component.edges for component in components)
