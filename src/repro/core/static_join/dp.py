"""Optimal dynamic programs for static join load shedding (Section 3.1.1).

Dual problem: retain ``k`` nodes across the components maximising retained
edges — ``T(i, j) = max_q T(i-1, j-q) + C_{m_i,n_i}(q)``, solved in
``O(c * k * max_component)`` (the paper's ``O(c * k^2)`` bound with the
inner maximisation capped at the component size).  The primal (delete
``k``) problem is the dual with ``total - k`` retained.  A 3-D variant
handles per-relation budgets ``(k_A, k_B)``.

All solvers return both the optimum and a per-component retention plan so
callers can materialise the truncated relations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .components import KurotowskiComponent, total_edges, total_nodes
from .retention import retention_benefit, retention_split

_NEG_INF = float("-inf")


@dataclass
class RetentionPlan:
    """Solution of a static shedding problem.

    Attributes
    ----------
    retained_edges:
        Join result tuples surviving the truncation (the MAX-subset
        objective value).
    per_component:
        For each input component, the ``(keep_a, keep_b)`` node counts.
    """

    retained_edges: int
    per_component: list[tuple[int, int]]

    def retained_nodes(self) -> int:
        return sum(a + b for a, b in self.per_component)

    def lost_edges(self, components: Sequence[KurotowskiComponent]) -> int:
        """Deleted output size relative to the full join."""
        return total_edges(components) - self.retained_edges


def max_edges_retaining(
    components: Sequence[KurotowskiComponent], k: int
) -> RetentionPlan:
    """Dual problem: retain exactly ``k`` nodes, maximise retained edges.

    Raises
    ------
    ValueError
        If ``k`` is negative or exceeds the total node count (there is no
        way to retain more nodes than exist).
    """
    n_total = total_nodes(components)
    if not 0 <= k <= n_total:
        raise ValueError(f"cannot retain {k} of {n_total} nodes")

    # best[j] = max edges retaining exactly j nodes from components so far.
    best: list[float] = [0] + [_NEG_INF] * k
    # choices[i][j] = q retained from component i in the optimum for j.
    choices: list[list[int]] = []

    for component in components:
        size = component.nodes
        benefits = [retention_benefit(component.m, component.n, q) for q in range(size + 1)]
        updated: list[float] = [_NEG_INF] * (k + 1)
        choice_row = [0] * (k + 1)
        for j in range(k + 1):
            best_value = _NEG_INF
            best_q = 0
            q_max = min(size, j)
            for q in range(q_max + 1):
                prior = best[j - q]
                if prior == _NEG_INF:
                    continue
                value = prior + benefits[q]
                if value > best_value:
                    best_value = value
                    best_q = q
            updated[j] = best_value
            choice_row[j] = best_q
        best = updated
        choices.append(choice_row)

    if best[k] == _NEG_INF:
        raise AssertionError("DP failed to fill a feasible budget")  # pragma: no cover

    # Trace back the per-component retention counts.
    per_component: list[tuple[int, int]] = [(0, 0)] * len(components)
    j = k
    for i in range(len(components) - 1, -1, -1):
        q = choices[i][j]
        component = components[i]
        per_component[i] = retention_split(component.m, component.n, q)
        j -= q
    assert j == 0, "traceback did not consume the whole budget"

    return RetentionPlan(retained_edges=int(best[k]), per_component=per_component)


def min_edges_lost_deleting(
    components: Sequence[KurotowskiComponent], k: int
) -> RetentionPlan:
    """Primal problem: delete exactly ``k`` nodes, minimise lost edges.

    Equivalent to retaining ``total_nodes - k`` (the paper's duality).
    """
    n_total = total_nodes(components)
    if not 0 <= k <= n_total:
        raise ValueError(f"cannot delete {k} of {n_total} nodes")
    return max_edges_retaining(components, n_total - k)


def max_edges_retaining_per_relation(
    components: Sequence[KurotowskiComponent], k_a: int, k_b: int
) -> RetentionPlan:
    """The ``(k_A, k_B)`` variant: per-relation retention budgets.

    Three-dimensional DP ``T(i, j_a, j_b)``; within a component the best
    way to keep ``(a, b)`` nodes is simply the ``a x b`` biclique, so the
    inner maximisation ranges over per-partition keeps.  Complexity
    ``O(c * k_a * k_b * max_m * max_n)`` — intended for moderate budgets.
    """
    sum_a = sum(component.m for component in components)
    sum_b = sum(component.n for component in components)
    if not 0 <= k_a <= sum_a:
        raise ValueError(f"cannot retain {k_a} of {sum_a} A-tuples")
    if not 0 <= k_b <= sum_b:
        raise ValueError(f"cannot retain {k_b} of {sum_b} B-tuples")

    width = k_b + 1
    best: list[float] = [0.0] + [_NEG_INF] * (((k_a + 1) * width) - 1)
    choices: list[list[tuple[int, int]]] = []

    for component in components:
        m, n = component.m, component.n
        updated: list[float] = [_NEG_INF] * ((k_a + 1) * width)
        choice_row: list[tuple[int, int]] = [(0, 0)] * ((k_a + 1) * width)
        for ja in range(k_a + 1):
            a_max = min(m, ja)
            base = ja * width
            for jb in range(width):
                b_max = min(n, jb)
                best_value = _NEG_INF
                best_pair = (0, 0)
                for a in range(a_max + 1):
                    prior_base = (ja - a) * width
                    for b in range(b_max + 1):
                        prior = best[prior_base + jb - b]
                        if prior == _NEG_INF:
                            continue
                        value = prior + a * b
                        if value > best_value:
                            best_value = value
                            best_pair = (a, b)
                updated[base + jb] = best_value
                choice_row[base + jb] = best_pair
        best = updated
        choices.append(choice_row)

    final = best[k_a * width + k_b]
    if final == _NEG_INF:
        raise AssertionError("DP failed to fill a feasible budget")  # pragma: no cover

    per_component: list[tuple[int, int]] = [(0, 0)] * len(components)
    ja, jb = k_a, k_b
    for i in range(len(components) - 1, -1, -1):
        a, b = choices[i][ja * width + jb]
        per_component[i] = (a, b)
        ja -= a
        jb -= b
    assert (ja, jb) == (0, 0), "traceback did not consume the whole budget"

    return RetentionPlan(retained_edges=int(final), per_component=per_component)


def greedy_min_degree_deletion(
    components: Sequence[KurotowskiComponent], k: int
) -> RetentionPlan:
    """Greedy baseline: repeatedly delete a currently-minimum-degree node.

    Deleting an A-node of ``K(m, n)`` loses ``n`` edges (its degree), so
    the greedy rule picks the component/side with the smallest opposite
    count.  Not optimal in general (the DP is); used as a comparison
    point in the static-join experiment.
    """
    import heapq

    n_total = total_nodes(components)
    if not 0 <= k <= n_total:
        raise ValueError(f"cannot delete {k} of {n_total} nodes")

    remaining = [[component.m, component.n] for component in components]
    heap: list[tuple[int, int, int]] = []  # (degree = loss, component, side)
    for i, (m, n) in enumerate(remaining):
        if m:
            heap.append((n, i, 0))
        if n:
            heap.append((m, i, 1))
    heapq.heapify(heap)

    for _ in range(k):
        while True:
            degree, i, side = heapq.heappop(heap)
            current_degree = remaining[i][1 - side]
            if remaining[i][side] == 0 or degree != current_degree:
                continue  # stale entry
            break
        remaining[i][side] -= 1
        if remaining[i][side]:
            heapq.heappush(heap, (remaining[i][1 - side], i, side))
        # The opposite side's degree just dropped; push a fresh entry.
        if remaining[i][1 - side]:
            heapq.heappush(heap, (remaining[i][side], i, 1 - side))

    per_component = [(m, n) for m, n in remaining]
    retained = sum(m * n for m, n in per_component)
    return RetentionPlan(retained_edges=retained, per_component=per_component)


def random_deletion(
    components: Sequence[KurotowskiComponent], k: int, *, seed: int = 0
) -> RetentionPlan:
    """Uniform random deletion baseline (the RAND analogue)."""
    import numpy as np

    n_total = total_nodes(components)
    if not 0 <= k <= n_total:
        raise ValueError(f"cannot delete {k} of {n_total} nodes")

    rng = np.random.default_rng(seed)
    # Flatten nodes as (component, side) slots and sample without replacement.
    slots: list[tuple[int, int]] = []
    for i, component in enumerate(components):
        slots.extend([(i, 0)] * component.m)
        slots.extend([(i, 1)] * component.n)
    doomed = rng.choice(len(slots), size=k, replace=False) if k else []

    remaining = [[component.m, component.n] for component in components]
    for index in doomed:
        i, side = slots[int(index)]
        remaining[i][side] -= 1

    per_component = [(m, n) for m, n in remaining]
    retained = sum(m * n for m, n in per_component)
    return RetentionPlan(retained_edges=retained, per_component=per_component)
