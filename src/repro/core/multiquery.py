"""Multiple window joins sharing input queues (paper Sections 2.1 and 6).

The modular architecture's advertised benefit is that "if streams provide
input for multiple operators, queues can be shared", with queue shedding
"taking into account ... input from several statistics modules" because
different operators prefer different tuples.  The paper leaves resource
sharing across queries as future work (Section 6); this module builds
that system:

* tuples carry several join attributes
  (:func:`repro.streams.generators.multi_attribute_pair`);
* each registered query is a sliding-window equi-join on one attribute
  with its own window, memory budget, and PROB statistics;
* both streams feed one shared bounded queue per stream; the service
  budget (operator-tuple deliveries per tick) is the scarce resource;
* on overflow the queue sheds by a pluggable rule: ``"tail"``,
  ``"random"``, or semantic aggregation over the queries' statistics —
  ``"max"`` (protect a tuple any query values) or ``"sum"`` (weigh total
  demand).

Every delivered tuple is processed by *all* queries (probe + admit under
each query's own policy), so one queue drop loses the tuple for every
query — exactly the coupling that makes shared shedding interesting.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..obs import Timer, active_or_none
from ..obs.trace import (
    EVENT_ARRIVE,
    EVENT_DROP,
    EVENT_EXPIRE,
    REASON_QUEUE,
    TraceEvent,
    tracing_or_none,
)
from ..stats.frequency import StaticFrequencyTable
from ..streams.tuples import StreamPair
from .kernel import JoinKernel
from .memory import JoinMemory, TupleRecord
from .policies.prob import ProbPolicy
from .results import BaseRunResult, DropBreakdown

SHED_RULES = ("tail", "random", "max", "sum")


@dataclass(frozen=True)
class QuerySpec:
    """One sliding-window join registered with the shared system.

    Attributes
    ----------
    name:
        Identifier for reporting.
    attribute:
        Index of the join attribute within each tuple's key vector.
    window / memory:
        The query's own window size and (fixed-allocation) budget.
    """

    name: str
    attribute: int
    window: int
    memory: int

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError(f"{self.name}: window must be positive")
        if self.memory <= 0 or self.memory % 2:
            raise ValueError(f"{self.name}: memory must be positive and even")
        if self.attribute < 0:
            raise ValueError(f"{self.name}: attribute must be non-negative")


@dataclass
class MultiQueryResult(BaseRunResult):
    """Per-query outputs plus shared-queue counters."""

    outputs: dict[str, int]
    processed: int
    shed_from_queue: int
    expired_in_queue: int
    arrived: int
    evicted_from_memory: int = 0
    policy_name: str = "PROB"
    metrics: Optional[dict] = None
    trace: Optional[list] = None

    engine_kind = "multiquery"

    @property
    def total_output(self) -> int:
        return sum(self.outputs.values())

    @property
    def output_count(self) -> int:
        """Unified-result alias: total output across the queries."""
        return self.total_output

    def drop_breakdown(self) -> DropBreakdown:
        return DropBreakdown(
            rejected=self.shed_from_queue,
            evicted=self.evicted_from_memory,
            expired=self.expired_in_queue,
        )


class _QueryOperator:
    """One query's join state within the shared system.

    The join mechanics (expiry, probe, admission contest, trace
    emission) live in a :class:`~repro.core.kernel.JoinKernel` tagged
    with the query's name; the operator adds only what is
    query-specific — attribute projection, the staleness gate, and
    warmup-aware output counting.
    """

    def __init__(self, spec: QuerySpec, estimators: dict) -> None:
        self.spec = spec
        self.memory = JoinMemory(spec.memory)
        self.policies = {
            "R": ProbPolicy(estimators),
            "S": ProbPolicy(estimators),
        }
        self.policies["R"].bind(self.memory)
        self.policies["S"].bind(self.memory)
        self.kernel: Optional[JoinKernel] = None  # attached per run
        self.output = 0

    def attach_kernel(self, tracer) -> None:
        """Wire the run's tracer in; called once at run start."""
        self.kernel = JoinKernel(
            self.memory,
            self.policies["R"],
            self.policies["S"],
            tracer=tracer,
            tag=self.spec.name,
        )

    @property
    def evictions(self) -> int:
        return self.kernel.drops().evicted if self.kernel is not None else 0

    def process(
        self, stream: str, arrival: int, keys: tuple, now: int, counted: bool,
    ) -> None:
        if arrival <= now - self.spec.window:
            return  # queued too long: already outside this query's window
        kernel = self.kernel
        key = keys[self.spec.attribute]
        kernel.expire(now - self.spec.window, now)

        matches = kernel.probe(stream, key, now)
        if counted:
            self.output += matches

        kernel.insert(TupleRecord(stream, arrival, key), now)


class SharedQueueSystem:
    """K window joins fed by shared per-stream queues.

    Parameters
    ----------
    pair:
        Multi-attribute stream pair (keys are attribute vectors).
    queries:
        The joins sharing the streams.
    service_per_tick:
        Operator-tuple deliveries per tick; delivering one tuple to all
        K queries costs K units, so a budget below ``2K`` (two arrivals
        per tick) forces queue shedding.
    queue_capacity:
        Per-stream queue bound.
    shed_rule:
        ``"tail"`` / ``"random"`` / ``"max"`` / ``"sum"`` (see module
        docstring).
    warmup:
        Ticks before per-query output counting starts.
    """

    def __init__(
        self,
        pair: StreamPair,
        queries: Sequence[QuerySpec],
        *,
        service_per_tick: int,
        queue_capacity: int,
        shed_rule: str = "tail",
        warmup: int = 0,
        seed: int = 0,
        metrics=None,
        trace=None,
    ) -> None:
        if not queries:
            raise ValueError("need at least one query")
        names = [query.name for query in queries]
        if len(set(names)) != len(names):
            raise ValueError("query names must be unique")
        if service_per_tick <= 0:
            raise ValueError("service_per_tick must be positive")
        if queue_capacity <= 0:
            raise ValueError("queue_capacity must be positive")
        if shed_rule not in SHED_RULES:
            raise ValueError(f"shed_rule must be one of {SHED_RULES}")
        if warmup < 0:
            raise ValueError("warmup must be non-negative")

        distributions = pair.metadata.get("attribute_distributions")
        if distributions is None:
            raise ValueError(
                "pair must come from multi_attribute_pair (attribute "
                "distributions are the queries' statistics modules)"
            )
        width = len(distributions)
        for query in queries:
            if query.attribute >= width:
                raise ValueError(
                    f"{query.name}: attribute {query.attribute} out of range "
                    f"(tuples have {width})"
                )

        self.pair = pair
        self.service_per_tick = service_per_tick
        self.queue_capacity = queue_capacity
        self.shed_rule = shed_rule
        self.warmup = warmup
        self.metrics = metrics
        self.trace = trace
        self._rng = np.random.default_rng(seed)

        self._estimators_per_attribute = [
            {
                "R": StaticFrequencyTable.from_array(dist_r.probabilities()),
                "S": StaticFrequencyTable.from_array(dist_s.probabilities()),
            }
            for dist_r, dist_s in distributions
        ]
        self.operators = [
            _QueryOperator(query, self._estimators_per_attribute[query.attribute])
            for query in queries
        ]

    # ------------------------------------------------------------------
    def _tuple_value(self, stream: str, keys: tuple) -> float:
        """Aggregate partner-arrival probability across the queries."""
        other = "S" if stream == "R" else "R"
        values = [
            self._estimators_per_attribute[op.spec.attribute][other].probability(
                keys[op.spec.attribute]
            )
            for op in self.operators
        ]
        return max(values) if self.shed_rule == "max" else sum(values)

    def _shed(self, queue: deque, newcomer: tuple) -> tuple:
        """Pick what to drop; returns the victim (maybe the newcomer)."""
        if self.shed_rule == "tail" or not queue:
            return newcomer
        if self.shed_rule == "random":
            index = int(self._rng.integers(len(queue) + 1))
            if index == len(queue):
                return newcomer
            victim = queue[index]
            del queue[index]
            return victim
        # Semantic: shed the lowest aggregate value; ties drop older.
        weakest_index = -1
        weakest_score = (self._tuple_value(newcomer[1], newcomer[2]), newcomer[0])
        for index, (arrival, stream, keys) in enumerate(queue):
            score = (self._tuple_value(stream, keys), arrival)
            if score < weakest_score:
                weakest_score = score
                weakest_index = index
        if weakest_index < 0:
            return newcomer
        victim = queue[weakest_index]
        del queue[weakest_index]
        return victim

    def run(self) -> MultiQueryResult:
        """Simulate the shared pipeline over the whole stream pair."""
        queues = {"R": deque(), "S": deque()}
        max_window = max(op.spec.window for op in self.operators)
        cost_per_tuple = len(self.operators)

        processed = 0
        shed = 0
        expired = 0
        arrived = 0

        obs = active_or_none(self.metrics)
        tracer = tracing_or_none(self.trace)
        tracing = tracer is not None
        for operator in self.operators:
            operator.attach_kernel(tracer)
        timed = obs is not None
        if timed:
            run_timer = Timer()
            run_timer.start()
            depth_r = obs.series("queue.depth", side="R")
            depth_s = obs.series("queue.depth", side="S")

        for t in range(len(self.pair)):
            for stream, keys in (("R", self.pair.r[t]), ("S", self.pair.s[t])):
                arrived += 1
                if tracing:
                    tracer.emit(TraceEvent(t, stream, keys, EVENT_ARRIVE, t))
                newcomer = (t, stream, keys)
                queue = queues[stream]
                if len(queue) >= self.queue_capacity:
                    victim = self._shed(queue, newcomer)
                    shed += 1
                    if tracing:
                        tracer.emit(TraceEvent(
                            t, victim[1], victim[2], EVENT_DROP,
                            victim[0], None, REASON_QUEUE,
                        ))
                    if victim is newcomer:
                        continue
                queue.append(newcomer)

            budget = self.service_per_tick
            while budget >= cost_per_tuple:
                head_r = queues["R"][0] if queues["R"] else None
                head_s = queues["S"][0] if queues["S"] else None
                if head_r is None and head_s is None:
                    break
                if head_s is None or (head_r is not None and head_r[0] <= head_s[0]):
                    arrival, stream, keys = queues["R"].popleft()
                else:
                    arrival, stream, keys = queues["S"].popleft()
                if arrival <= t - max_window:
                    expired += 1
                    if tracing:
                        tracer.emit(TraceEvent(
                            t, stream, keys, EVENT_EXPIRE, arrival,
                            None, REASON_QUEUE,
                        ))
                    continue  # stale for every query; costs no service
                counted = t >= self.warmup
                for operator in self.operators:
                    operator.process(stream, arrival, keys, t, counted)
                processed += 1
                budget -= cost_per_tuple

            if timed:
                depth_r.append(t, len(queues["R"]))
                depth_s.append(t, len(queues["S"]))

        snapshot = None
        if obs is not None:
            run_timer.stop()
            obs.counter("queue.arrived").inc(arrived)
            obs.counter("queue.processed").inc(processed)
            obs.counter("queue.shed").inc(shed)
            obs.counter("queue.expired").inc(expired)
            for operator in self.operators:
                obs.counter("multiquery.output", query=operator.spec.name).inc(
                    operator.output
                )
                obs.counter("multiquery.evictions", query=operator.spec.name).inc(
                    operator.evictions
                )
            obs.record_phase("engine/run", run_timer.seconds)
            snapshot = obs.snapshot()

        trace_events = tracer.collect() if tracing else None

        return MultiQueryResult(
            outputs={op.spec.name: op.output for op in self.operators},
            processed=processed,
            shed_from_queue=shed,
            expired_in_queue=expired,
            arrived=arrived,
            evicted_from_memory=sum(op.evictions for op in self.operators),
            metrics=snapshot,
            trace=trace_events,
        )
