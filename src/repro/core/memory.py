"""Join memory: the bounded tuple state of the window join operator.

Implements the integrated-model join memory of Section 2.1 with either a
*fixed* allocation (M/2 slots per stream; an incoming R-tuple can only
displace an R-tuple) or a *variable* allocation (one shared pool of M
slots with "cross" evictions), the distinction behind the paper's
PROB/PROBV and OPT/OPTV pairs.

Data-structure notes
--------------------
Everything on the hot path is O(1) amortised:

* match counting uses per-key alive counters;
* random eviction uses a slot array with swap-remove;
* per-key FIFO deques give the oldest alive tuple of a key (PROB's tie
  rule and LIFE's per-key minimum) with lazy cleanup of dead entries;
* expiry walks an arrival-ordered deque, skipping dead entries.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterator, Optional


class TupleRecord:
    """A stream tuple resident in (or offered to) the join memory."""

    __slots__ = ("stream", "arrival", "key", "alive", "slot", "priority", "tag")

    def __init__(self, stream: str, arrival: int, key: Hashable) -> None:
        self.stream = stream
        self.arrival = arrival
        self.key = key
        self.alive = False
        self.slot = -1  # index into the owning side's slot array
        self.priority = 0.0  # cached policy priority (static per tuple)
        self.tag = None  # policy-private scratch (e.g. ARM's doomed flag)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "dead"
        return f"TupleRecord({self.stream}({self.arrival})={self.key!r}, {state})"


class StreamMemory:
    """All resident tuples of one stream side."""

    def __init__(self, stream: str) -> None:
        self.stream = stream
        self._slots: list[TupleRecord] = []
        self._by_key: dict[Hashable, deque[TupleRecord]] = {}
        self._key_counts: dict[Hashable, int] = {}
        self._by_arrival: deque[TupleRecord] = deque()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self._slots)

    def match_count(self, key: Hashable) -> int:
        """Number of resident tuples with the given join value."""
        return self._key_counts.get(key, 0)

    def match_total(self, keys) -> int:
        """Total resident matches over a batch of probe keys.

        The count-based bulk probe of the batched execution path: one
        dict lookup per key against the per-key alive counters, no
        record iteration.
        """
        get = self._key_counts.get
        total = 0
        for key in keys:
            total += get(key, 0)
        return total

    def matches(self, key: Hashable) -> Iterator[TupleRecord]:
        """Resident tuples with the given join value (for materialising)."""
        bucket = self._by_key.get(key)
        if not bucket:
            return
        for record in bucket:
            if record.alive:
                yield record

    def oldest_alive(self, key: Hashable) -> Optional[TupleRecord]:
        """Earliest-arrived resident tuple with this key, if any."""
        bucket = self._by_key.get(key)
        if not bucket:
            return None
        while bucket and not bucket[0].alive:
            bucket.popleft()
        if not bucket:
            del self._by_key[key]
            return None
        return bucket[0]

    def record_at_slot(self, index: int) -> TupleRecord:
        """Resident tuple at slot ``index`` (for uniform random eviction)."""
        return self._slots[index]

    def resident_keys(self) -> Iterator[Hashable]:
        """Keys with at least one resident tuple."""
        return iter(self._key_counts)

    def records(self) -> Iterator[TupleRecord]:
        """All resident tuples (unspecified order)."""
        return iter(self._slots)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, record: TupleRecord) -> None:
        if record.alive:
            raise ValueError(f"{record!r} is already resident")
        record.alive = True
        record.slot = len(self._slots)
        self._slots.append(record)
        key = record.key
        bucket = self._by_key.get(key)
        if bucket is None:
            self._by_key[key] = bucket = deque()
        bucket.append(record)
        counts = self._key_counts
        counts[key] = counts.get(key, 0) + 1
        self._by_arrival.append(record)

    def add_batch(self, records: list[TupleRecord]) -> None:
        """Bulk :meth:`add` for one chunk of fresh records.

        The caller (``JoinKernel.insert_batch``) has already performed
        the capacity check once for the whole chunk, so the loop here is
        pure data-structure maintenance with hoisted lookups.
        """
        slots = self._slots
        by_key = self._by_key
        counts = self._key_counts
        by_arrival = self._by_arrival
        index = len(slots)
        for record in records:
            if record.alive:
                raise ValueError(f"{record!r} is already resident")
            record.alive = True
            record.slot = index
            index += 1
            slots.append(record)
            key = record.key
            bucket = by_key.get(key)
            if bucket is None:
                by_key[key] = bucket = deque()
            bucket.append(record)
            counts[key] = counts.get(key, 0) + 1
            by_arrival.append(record)

    def remove(self, record: TupleRecord) -> None:
        """Remove a resident tuple (eviction or expiry), O(1)."""
        if not record.alive:
            raise ValueError(f"{record!r} is not resident")
        record.alive = False

        last = self._slots[-1]
        self._slots[record.slot] = last
        last.slot = record.slot
        self._slots.pop()
        record.slot = -1

        remaining = self._key_counts[record.key] - 1
        if remaining:
            self._key_counts[record.key] = remaining
        else:
            del self._key_counts[record.key]
        # The _by_arrival deque cleans up lazily via `alive` (expiry
        # front-pops it within one window).  The key bucket must be
        # purged here: entries are in admission order, so dead records
        # drain from the front as their cohort leaves — amortised O(1),
        # each entry popped exactly once.  Leaving them to the `alive`
        # flag alone would retain every record ever admitted on streams
        # longer than the window (the unbounded-source soak catches
        # this).
        bucket = self._by_key.get(record.key)
        if bucket is not None:
            while bucket and not bucket[0].alive:
                bucket.popleft()
            if not bucket:
                del self._by_key[record.key]

    def expire_until(self, horizon: int) -> list[TupleRecord]:
        """Remove and return tuples with ``arrival <= horizon``.

        Arrivals enter in time order, so expiry only inspects the front of
        the arrival deque (dead entries are skipped and discarded).
        """
        expired: list[TupleRecord] = []
        by_arrival = self._by_arrival
        while by_arrival:
            front = by_arrival[0]
            if not front.alive:
                by_arrival.popleft()
                continue
            if front.arrival > horizon:
                break
            by_arrival.popleft()
            self.remove(front)
            expired.append(front)
        return expired

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Serialisable state capturing both iteration orders exactly.

        Two orders matter for bit-identical resumption: the *slot* order
        (RAND draws victims by slot index, and swap-remove makes it
        distinct from arrival order) and the *admission* order (per-key
        FIFO buckets and the expiry deque).  ``slots`` records tuples in
        slot order; ``order`` lists slot indices in admission order.
        """
        return {
            "stream": self.stream,
            "slots": [
                (r.arrival, r.key, r.priority, r.tag) for r in self._slots
            ],
            "order": [r.slot for r in self._by_arrival if r.alive],
        }

    def restore(self, state: dict) -> list[TupleRecord]:
        """Rebuild from :meth:`snapshot`; returns records in admission order.

        The returned list is what the eviction policies need to rebuild
        their private structures (heaps index the same record objects the
        memory holds).
        """
        if state["stream"] != self.stream:
            raise ValueError(
                f"snapshot of stream {state['stream']!r} cannot restore "
                f"stream {self.stream!r}"
            )
        slots: list[TupleRecord] = []
        for index, (arrival, key, priority, tag) in enumerate(state["slots"]):
            record = TupleRecord(self.stream, arrival, key)
            record.alive = True
            record.slot = index
            record.priority = priority
            record.tag = tag
            slots.append(record)
        self._slots = slots
        self._by_key = {}
        self._key_counts = {}
        self._by_arrival = deque()
        admitted: list[TupleRecord] = []
        for slot_index in state["order"]:
            record = slots[slot_index]
            bucket = self._by_key.get(record.key)
            if bucket is None:
                self._by_key[record.key] = bucket = deque()
            bucket.append(record)
            self._key_counts[record.key] = self._key_counts.get(record.key, 0) + 1
            self._by_arrival.append(record)
            admitted.append(record)
        if len(admitted) != len(slots):
            raise ValueError("snapshot order does not cover every slot")
        return admitted


class JoinMemory:
    """The complete join state: two stream sides under one budget.

    Parameters
    ----------
    capacity:
        Total memory budget M in tuples.
    variable:
        False — fixed allocation, each side owns ``capacity // 2`` slots
        (the paper requires M even here).  True — one shared pool; a new
        tuple of either stream may displace a tuple of either stream.
    """

    def __init__(self, capacity: int, *, variable: bool = False) -> None:
        self._validate_capacity(capacity, variable)
        self.capacity = capacity
        self.variable = variable
        self.r = StreamMemory("R")
        self.s = StreamMemory("S")

    @staticmethod
    def _validate_capacity(capacity: int, variable: bool) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not variable and capacity % 2 != 0:
            raise ValueError(
                f"fixed allocation splits memory evenly; capacity must be even, got {capacity}"
            )

    def resize(self, capacity: int) -> None:
        """Change the budget (time-varying memory, paper Section 3.3.1).

        Shrinking below the current contents is allowed; the caller (the
        engine) is responsible for evicting the surplus afterwards.
        """
        self._validate_capacity(capacity, self.variable)
        self.capacity = capacity

    def surplus(self, stream: str) -> int:
        """Resident tuples beyond the budget on ``stream``'s pool."""
        if self.variable:
            return max(0, self.total_size - self.capacity)
        return max(0, self.side(stream).size - self.capacity // 2)

    def side(self, stream: str) -> StreamMemory:
        if stream == "R":
            return self.r
        if stream == "S":
            return self.s
        raise ValueError(f"unknown stream {stream!r}")

    def other_side(self, stream: str) -> StreamMemory:
        return self.s if stream == "R" else self.r

    @property
    def total_size(self) -> int:
        return self.r.size + self.s.size

    def needs_eviction(self, stream: str) -> bool:
        """Would admitting a tuple of ``stream`` exceed the budget?"""
        if self.variable:
            return self.total_size >= self.capacity
        return self.side(stream).size >= self.capacity // 2

    def side_capacity(self, stream: str) -> int:
        """Slots available to one stream (the whole pool when variable)."""
        return self.capacity if self.variable else self.capacity // 2

    def eviction_candidates(self, stream: str) -> tuple[StreamMemory, ...]:
        """Sides a new tuple of ``stream`` may displace a victim from."""
        if self.variable:
            return (self.r, self.s)
        return (self.side(stream),)

    def admit(self, record: TupleRecord) -> None:
        """Add a tuple; the caller must have made room first."""
        if self.needs_eviction(record.stream):
            raise RuntimeError(
                f"admit called on full memory (capacity {self.capacity})"
            )
        self.side(record.stream).add(record)

    def remove(self, record: TupleRecord) -> None:
        self.side(record.stream).remove(record)

    def expire_until(self, horizon: int) -> list[TupleRecord]:
        """Expire tuples of both sides with ``arrival <= horizon``."""
        return self.r.expire_until(horizon) + self.s.expire_until(horizon)

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Serialisable state of both sides plus the (resizable) budget."""
        return {
            "capacity": self.capacity,
            "variable": self.variable,
            "r": self.r.snapshot(),
            "s": self.s.snapshot(),
        }

    def restore(self, state: dict) -> tuple[list[TupleRecord], list[TupleRecord]]:
        """Rebuild from :meth:`snapshot`.

        Returns ``(r_records, s_records)``, each in admission order, for
        policy-state reconstruction.  The allocation mode must match (it
        is structural); the capacity is taken from the snapshot because
        time-varying schedules may have resized it.
        """
        if bool(state["variable"]) != self.variable:
            raise ValueError(
                "snapshot allocation mode (variable="
                f"{state['variable']}) does not match this memory "
                f"(variable={self.variable})"
            )
        self._validate_capacity(state["capacity"], self.variable)
        self.capacity = state["capacity"]
        return self.r.restore(state["r"]), self.s.restore(state["s"])
