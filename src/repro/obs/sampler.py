"""Fold a lifecycle trace into per-window time-series.

A raw trace is one record per event — too fine for eyeballing a run.
The :class:`Sampler` buckets events into fixed-width tick windows and
keeps, per bucket, the counts of each event kind plus the derived
memory occupancy (admits minus evicts/expires, accumulated), giving the
time-series view the dashboard animates: arrival pressure, shedding
rate, output rate, and how full the bounded memory ran.

The sampler is stream-friendly: feed events one at a time with
:meth:`Sampler.add` (any tick order within reason — buckets are keyed,
not appended) or fold a whole trace with :func:`sample_trace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from .trace import (
    EVENT_ADMIT,
    EVENT_DROP,
    EVENT_EVICT,
    EVENT_EXPIRE,
    EVENT_KINDS,
    REASON_LOST_SHARD,
    TraceEvent,
)

__all__ = ["LOST_KIND", "Sampler", "WindowSample", "sample_trace"]

#: Synthetic series name for ``drop`` events whose reason is
#: ``lost_shard`` — a whole abandoned shard, not an ordinary admission
#: refusal, so the dashboard reports it as its own row.  Counted *in
#: addition to* the plain ``drop`` kind (the drop total stays the drop
#: total; the lost row decomposes it).
LOST_KIND = "lost"


@dataclass
class WindowSample:
    """Aggregated lifecycle counts for one tick bucket.

    ``occupancy`` is the net resident population at the bucket's end —
    meaningful once the whole trace is folded; mid-stream it reflects
    events seen so far.
    """

    start: int
    width: int
    counts: dict = field(default_factory=dict)
    #: net resident tuples at bucket end (cumulative admits − departures)
    occupancy: int = 0

    @property
    def end(self) -> int:
        return self.start + self.width - 1

    def get(self, kind: str) -> int:
        return self.counts.get(kind, 0)

    def to_json(self) -> dict:
        return {
            "start": self.start,
            "width": self.width,
            "counts": dict(self.counts),
            "occupancy": self.occupancy,
        }


class Sampler:
    """Accumulate trace events into fixed-width tick windows.

    ``width`` is the bucket size in ticks.  Buckets materialise on first
    touch, so sparse traces stay sparse; :meth:`windows` fills the gaps
    with empty samples and finalises occupancy as a running balance.
    """

    def __init__(self, width: int = 50):
        if width < 1:
            raise ValueError(f"bucket width must be >= 1, got {width}")
        self.width = width
        self._buckets: dict[int, WindowSample] = {}

    def add(self, event: TraceEvent) -> None:
        index = event.tick // self.width
        bucket = self._buckets.get(index)
        if bucket is None:
            bucket = self._buckets[index] = WindowSample(
                start=index * self.width, width=self.width
            )
        bucket.counts[event.kind] = bucket.counts.get(event.kind, 0) + 1
        if event.kind == EVENT_DROP and event.reason == REASON_LOST_SHARD:
            bucket.counts[LOST_KIND] = bucket.counts.get(LOST_KIND, 0) + 1

    def extend(self, events: Iterable[TraceEvent]) -> None:
        for event in events:
            self.add(event)

    def __len__(self) -> int:
        return len(self._buckets)

    def windows(self, *, fill: bool = True) -> list[WindowSample]:
        """Buckets in tick order, gap-filled, with occupancy finalised.

        Occupancy carries across buckets: each bucket's value is the
        previous balance plus its admits minus its evicts and expiries.
        Drops never entered memory and join outputs are not stateful,
        so neither moves the balance.
        """
        if not self._buckets:
            return []
        indexes = sorted(self._buckets)
        if fill:
            span = range(indexes[0], indexes[-1] + 1)
        else:
            span = indexes
        out: list[WindowSample] = []
        balance = 0
        for index in span:
            bucket = self._buckets.get(index) or WindowSample(
                start=index * self.width, width=self.width
            )
            balance += (
                bucket.get(EVENT_ADMIT)
                - bucket.get(EVENT_EVICT)
                - bucket.get(EVENT_EXPIRE)
            )
            bucket.occupancy = balance
            out.append(bucket)
        return out

    def totals(self) -> dict:
        """Whole-trace counts per event kind (zero-filled)."""
        totals = {kind: 0 for kind in EVENT_KINDS}
        for bucket in self._buckets.values():
            for kind, count in bucket.counts.items():
                totals[kind] = totals.get(kind, 0) + count
        return totals


def sample_trace(
    events: Iterable[TraceEvent],
    *,
    width: int = 50,
    fill: bool = True,
) -> list[WindowSample]:
    """One-shot fold: trace in, ordered window samples out."""
    sampler = Sampler(width)
    sampler.extend(events)
    return sampler.windows(fill=fill)
