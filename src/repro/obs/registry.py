"""Metrics registry: counters, gauges, histograms, series, phase timers.

One :class:`MetricsRegistry` accompanies one run (or one experiment
suite).  Components on the hot path receive the registry — or ``None`` —
and record what they see:

* :class:`Counter` — monotone event counts (probes, evictions, relabels);
* :class:`Gauge` — last-written values (routed flow, final queue depth);
* :class:`Histogram` — streaming summaries (count/sum/min/max) of a
  distribution, e.g. augmenting-path lengths;
* :class:`Series` — append-only ``(t, value)`` traces, e.g. per-tick
  occupancy or queue depth;
* phase timers — nested wall-clock spans (see :mod:`repro.obs.timer`)
  aggregated per slash-separated path such as ``"run_join/engine"``.

Instruments are identified by ``(name, labels)``; asking for the same
pair twice returns the same object, so callers can cache instruments in
locals outside their hot loops.

The disabled path
-----------------
Instrumentation must cost nothing when off.  Two mechanisms provide
that:

* callers treat ``metrics=None`` as "off" and guard with a single local
  ``is not None`` test (the engines do this);
* :data:`NULL_RECORDER` — a shared :class:`NullRecorder` — offers the
  full registry interface as no-ops for call sites that prefer not to
  branch.  Its instruments are singletons, its spans reusable, and
  ``NullRecorder.enabled`` is ``False`` so components can collapse it to
  ``None`` once at entry (``obs = metrics if metrics and metrics.enabled
  else None``).
"""

from __future__ import annotations

import time
from typing import Iterator, Optional

#: Canonical key for an instrument: name plus sorted label pairs.
MetricKey = tuple


def _key(name: str, labels: dict) -> MetricKey:
    if not labels:
        return (name,)
    return (name,) + tuple(sorted(labels.items()))


class Counter:
    """Monotonically increasing event count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}, {self.labels}, {self.value})"


class Gauge:
    """Last-written value."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}, {self.labels}, {self.value})"


class Histogram:
    """Streaming summary of a distribution: count, sum, min, max.

    A full sample reservoir would cost memory proportional to the run;
    the summary is enough for the mean and range the reports print.
    """

    __slots__ = ("name", "labels", "count", "sum", "min", "max")

    def __init__(self, name: str, labels: dict) -> None:
        self.name = name
        self.labels = labels
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class Series:
    """Append-only ``(t, value)`` trace (occupancy, queue depth, ...)."""

    __slots__ = ("name", "labels", "points")

    def __init__(self, name: str, labels: dict) -> None:
        self.name = name
        self.labels = labels
        self.points: list[tuple] = []

    def append(self, t, value) -> None:
        self.points.append((t, value))


class PhaseStat:
    """Aggregated wall-clock time of one span path."""

    __slots__ = ("path", "count", "seconds")

    def __init__(self, path: str) -> None:
        self.path = path
        self.count = 0
        self.seconds = 0.0

    def add(self, seconds: float, count: int = 1) -> None:
        self.count += count
        self.seconds += seconds


class _SpanContext:
    """Context manager recording one nested phase (see ``span``)."""

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_SpanContext":
        self._registry._span_stack.append(self._name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        elapsed = time.perf_counter() - self._start
        stack = self._registry._span_stack
        path = "/".join(stack)
        stack.pop()
        self._registry.record_phase(path, elapsed)


class MetricsRegistry:
    """Home of every instrument recorded during one run."""

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[MetricKey, Counter] = {}
        self._gauges: dict[MetricKey, Gauge] = {}
        self._histograms: dict[MetricKey, Histogram] = {}
        self._series: dict[MetricKey, Series] = {}
        self._phases: dict[str, PhaseStat] = {}
        self._span_stack: list[str] = []

    # ------------------------------------------------------------------
    # instruments (get-or-create)
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels) -> Counter:
        key = _key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(name, labels)
        return instrument

    def gauge(self, name: str, **labels) -> Gauge:
        key = _key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(name, labels)
        return instrument

    def histogram(self, name: str, **labels) -> Histogram:
        key = _key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(name, labels)
        return instrument

    def series(self, name: str, **labels) -> Series:
        key = _key(name, labels)
        instrument = self._series.get(key)
        if instrument is None:
            instrument = self._series[key] = Series(name, labels)
        return instrument

    def inc(self, name: str, amount: int = 1, **labels) -> None:
        """One-shot counter bump: ``registry.inc("runtime.retries")``.

        Sugar for call sites that touch a counter once (the runtime's
        failure accounting); hot loops should still cache the
        :class:`Counter` object from :meth:`counter`.
        """
        self.counter(name, **labels).inc(amount)

    # ------------------------------------------------------------------
    # phase timing
    # ------------------------------------------------------------------
    def span(self, name: str) -> _SpanContext:
        """Time a nested phase: ``with registry.span("engine"): ...``.

        Paths are built from the active span stack, so a span opened
        inside another records as ``"outer/inner"``.
        """
        return _SpanContext(self, name)

    def record_phase(self, path: str, seconds: float, count: int = 1) -> None:
        """Aggregate externally measured time under a phase path.

        The engines accumulate hot-loop section times into plain floats
        and flush them here once per run, keeping ``perf_counter`` calls
        out of the registry.
        """
        stat = self._phases.get(path)
        if stat is None:
            stat = self._phases[path] = PhaseStat(path)
        stat.add(seconds, count)

    # ------------------------------------------------------------------
    # access / export
    # ------------------------------------------------------------------
    def counters(self) -> Iterator[Counter]:
        return iter(self._counters.values())

    def gauges(self) -> Iterator[Gauge]:
        return iter(self._gauges.values())

    def histograms(self) -> Iterator[Histogram]:
        return iter(self._histograms.values())

    def all_series(self) -> Iterator[Series]:
        return iter(self._series.values())

    def phases(self) -> Iterator[PhaseStat]:
        return iter(self._phases.values())

    def counter_value(self, name: str, **labels) -> int:
        """Current value of a counter, 0 if it was never touched."""
        instrument = self._counters.get(_key(name, labels))
        return instrument.value if instrument is not None else 0

    def counter_total(self, name: str) -> int:
        """Sum of a counter over all label combinations."""
        return sum(c.value for c in self._counters.values() if c.name == name)

    def snapshot(self) -> dict:
        """JSON-serialisable dump of every instrument.

        Deterministically ordered (sorted by name, then labels) so
        snapshots diff cleanly; round-trips through
        :meth:`from_snapshot`.
        """

        def sort_key(instrument):
            return (instrument.name, sorted(instrument.labels.items()))

        return {
            "counters": [
                {"name": c.name, "labels": dict(c.labels), "value": c.value}
                for c in sorted(self._counters.values(), key=sort_key)
            ],
            "gauges": [
                {"name": g.name, "labels": dict(g.labels), "value": g.value}
                for g in sorted(self._gauges.values(), key=sort_key)
            ],
            "histograms": [
                {
                    "name": h.name,
                    "labels": dict(h.labels),
                    "count": h.count,
                    "sum": h.sum,
                    "min": h.min,
                    "max": h.max,
                }
                for h in sorted(self._histograms.values(), key=sort_key)
            ],
            "series": [
                {
                    "name": s.name,
                    "labels": dict(s.labels),
                    "points": [list(p) for p in s.points],
                }
                for s in sorted(self._series.values(), key=sort_key)
            ],
            "phases": [
                {"path": p.path, "count": p.count, "seconds": p.seconds}
                for p in sorted(self._phases.values(), key=lambda p: p.path)
            ],
        }

    def merge_snapshot(self, data: dict) -> None:
        """Fold a :meth:`snapshot` dump into this registry.

        The runtime layer uses this to aggregate worker-side metrics
        back into the parent registry: counters, phases, and histogram
        summaries accumulate; series points extend; gauges take the
        incoming value (last write wins).  Merging into a fresh registry
        reproduces the snapshot exactly (:meth:`from_snapshot`).
        """
        for entry in data.get("counters", ()):
            self.counter(entry["name"], **entry["labels"]).inc(entry["value"])
        for entry in data.get("gauges", ()):
            self.gauge(entry["name"], **entry["labels"]).set(entry["value"])
        for entry in data.get("histograms", ()):
            histogram = self.histogram(entry["name"], **entry["labels"])
            histogram.count += entry["count"]
            histogram.sum += entry["sum"]
            if entry["min"] is not None and (
                histogram.min is None or entry["min"] < histogram.min
            ):
                histogram.min = entry["min"]
            if entry["max"] is not None and (
                histogram.max is None or entry["max"] > histogram.max
            ):
                histogram.max = entry["max"]
        for entry in data.get("series", ()):
            series = self.series(entry["name"], **entry["labels"])
            series.points.extend(tuple(point) for point in entry["points"])
        for entry in data.get("phases", ()):
            self.record_phase(entry["path"], entry["seconds"], entry["count"])

    @classmethod
    def from_snapshot(cls, data: dict) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`snapshot` output."""
        registry = cls()
        registry.merge_snapshot(data)
        return registry


# ----------------------------------------------------------------------
# the disabled fast path
# ----------------------------------------------------------------------

class _NullInstrument:
    """Accepts every instrument method as a no-op."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def append(self, t, value) -> None:
        pass


class _NullSpan:
    """Reusable no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()
_NULL_SPAN = _NullSpan()


class NullRecorder:
    """Registry look-alike whose every operation is a no-op.

    ``enabled`` is ``False``; components that hold a registry reference
    across a hot loop should collapse it to ``None`` up front and guard
    with a local ``is not None`` test instead of calling through.
    """

    enabled = False

    def counter(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def inc(self, name: str, amount: int = 1, **labels) -> None:
        pass

    def gauge(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def series(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def record_phase(self, path: str, seconds: float, count: int = 1) -> None:
        pass

    def snapshot(self) -> dict:
        return {"counters": [], "gauges": [], "histograms": [], "series": [], "phases": []}


#: Shared no-op recorder; safe to pass anywhere a registry is expected.
NULL_RECORDER = NullRecorder()


def active_or_none(metrics) -> Optional[MetricsRegistry]:
    """Collapse ``None`` / disabled recorders to ``None``.

    The engines call this once at run entry so their hot loops guard on
    a plain local instead of a method call.
    """
    if metrics is None or not metrics.enabled:
        return None
    return metrics
