"""Lost-output attribution: which eviction cost which join outputs.

The paper's PROB/LIFE priorities (Section 3.3) are bets that a shed
tuple would have produced few future partners; the MAX-subset error of
a run is exactly the set of outputs those bets lost.  This module
replays a trace (see :mod:`repro.obs.trace`) against the EXACT partner
sets — derived from the same stream pair the run consumed, i.e. the
reference join with unbounded memory — and charges every missed output
pair to the single shedding event that caused it.

Why the accounting is exact (fast-CPU engine)
---------------------------------------------
In the integrated model probes precede admissions, so a result pair
``(earlier, later)`` is produced iff the *earlier* tuple is still
resident when the later one arrives; the later tuple always probes at
its own arrival.  A tuple arriving at ``a`` naturally covers probe
ticks ``a+1 .. a+w-1`` (it expires before tick ``a+w``'s probes), and
the always-produced simultaneous pair covers tick ``a`` itself.  Hence
each missed pair traces to exactly one lifecycle event of the earlier
tuple:

* ``drop/rejected`` at ``a`` — the tuple probed on arrival but never
  became resident: it loses every partner in ``a+1 .. a+w-1``;
* ``evict/displaced`` at ``e`` — the victim had already probed against
  tick ``e``'s arrivals: it loses partners in ``e+1 .. a+w-1``;
* ``evict/budget`` at ``e`` — budget sheds happen *before* tick
  ``e``'s probes: partners in ``e .. a+w-1`` are lost;
* ``expire/window`` — natural death loses nothing.

Summing the per-event losses therefore reconciles *exactly* with
``EXACT − policy`` output counts — the identity
:func:`AttributionReport.reconciles` checks and the test-suite asserts.
Events whose reasons fall outside this model (queue sheds of the
modular engines, count/landmark windows) are tallied under
``unattributed`` instead of silently mis-charged.

Entry points
------------
:func:`attribute_trace` builds an :class:`AttributionReport` from a
trace + the stream pair; :func:`regret_by_policy` runs several policies
on one workload (tracing enabled) and returns their reports;
:func:`format_regret_table` renders the per-policy comparison the
``repro trace attribute`` subcommand prints.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from .trace import (
    EVENT_DROP,
    EVENT_EVICT,
    REASON_BUDGET,
    REASON_DISPLACED,
    REASON_REJECTED,
    TraceEvent,
)

__all__ = [
    "AttributionReport",
    "EventRegret",
    "attribute_trace",
    "format_regret_table",
    "partner_index",
    "regret_by_policy",
]


def partner_index(pair) -> dict:
    """Per-``(stream, key)`` sorted arrival ticks — the EXACT partner sets.

    ``index[("S", k)]`` lists every tick at which an S-tuple with join
    value ``k`` arrives; a resident R-tuple's exact partners are the
    entries of that list inside its lifetime.  This is the reference
    engine's knowledge in indexed form.
    """
    index: dict = defaultdict(list)
    for t, (r_key, s_key) in enumerate(zip(pair.r, pair.s)):
        index[("R", r_key)].append(t)
        index[("S", s_key)].append(t)
    return dict(index)


@dataclass(frozen=True)
class EventRegret:
    """One shedding event and the outputs it cost.

    ``lost`` counts every partner the tuple would still have met had it
    lived its full window; ``lost_counted`` restricts to post-warmup
    probe ticks (the quantity the paper's figures plot).  ``priority``
    is the policy's estimate at decision time — regret high / priority
    low is the policy being *wrong*, not just unlucky.
    """

    tick: int
    stream: str
    key: object
    arrival: int
    kind: str
    reason: Optional[str]
    priority: Optional[float]
    lost: int
    lost_counted: int


@dataclass
class AttributionReport:
    """Per-eviction lost-output ledger of one traced run."""

    policy: str
    window: int
    warmup: int
    length: int
    events: list[EventRegret] = field(default_factory=list)
    #: shed events whose reasons the exact replay cannot attribute
    #: (queue sheds, count/landmark windows), by reason.
    unattributed: dict = field(default_factory=dict)
    exact_output: Optional[int] = None
    observed_output: Optional[int] = None

    @property
    def total_lost(self) -> int:
        return sum(event.lost for event in self.events)

    @property
    def total_lost_counted(self) -> int:
        return sum(event.lost_counted for event in self.events)

    def lost_by_reason(self, *, counted: bool = True) -> dict:
        """``{reason: lost outputs}`` over all shed events."""
        totals: dict = defaultdict(int)
        for event in self.events:
            totals[event.reason or event.kind] += (
                event.lost_counted if counted else event.lost
            )
        return dict(totals)

    def top_regrets(self, n: int = 10) -> list[EventRegret]:
        """The ``n`` most expensive shedding decisions."""
        return sorted(
            self.events, key=lambda e: (-e.lost_counted, -e.lost, e.tick)
        )[:n]

    def reconciles(self) -> bool:
        """Does ``EXACT − observed`` equal the attributed loss?

        Requires both output counts and no unattributed events; the
        identity is exact for fast-CPU traces (see module docstring).
        """
        if self.exact_output is None or self.observed_output is None:
            return False
        if self.unattributed:
            return False
        return self.exact_output - self.observed_output == self.total_lost_counted


def attribute_trace(
    events: Iterable[TraceEvent],
    pair,
    window: int,
    *,
    warmup: Optional[int] = None,
    policy: str = "?",
    exact_output: Optional[int] = None,
    observed_output: Optional[int] = None,
) -> AttributionReport:
    """Replay a trace against the exact partner sets of ``pair``.

    Only shedding events (``evict`` / ``drop``) carry regret; the rest
    of the lifecycle is ignored here (the sampler consumes it).  Losses
    are clipped to the stream length, so truncated ring-buffer traces
    still attribute correctly for the events they retain.
    """
    if warmup is None:
        warmup = 2 * window
    index = partner_index(pair)
    length = len(pair)
    report = AttributionReport(
        policy=policy,
        window=window,
        warmup=warmup,
        length=length,
        exact_output=exact_output,
        observed_output=observed_output,
    )
    unattributed: dict = defaultdict(int)

    for event in events:
        if event.kind not in (EVENT_EVICT, EVENT_DROP):
            continue
        if event.kind == EVENT_EVICT and event.reason == REASON_DISPLACED:
            start = event.tick + 1
        elif event.kind == EVENT_EVICT and event.reason == REASON_BUDGET:
            start = event.tick
        elif event.kind == EVENT_DROP and event.reason == REASON_REJECTED:
            start = event.arrival + 1
        else:
            unattributed[event.reason or event.kind] += 1
            continue

        # Partners probe on the *opposite* stream at ticks inside the
        # tuple's residual lifetime.
        other = "S" if event.stream == "R" else "R"
        end = min(event.arrival + window - 1, length - 1)
        ticks = index.get((other, event.key))
        if not ticks or start > end:
            lost = lost_counted = 0
        else:
            lost = bisect_right(ticks, end) - bisect_left(ticks, start)
            counted_start = max(start, warmup)
            lost_counted = (
                bisect_right(ticks, end) - bisect_left(ticks, counted_start)
                if counted_start <= end
                else 0
            )
        report.events.append(EventRegret(
            tick=event.tick,
            stream=event.stream,
            key=event.key,
            arrival=event.arrival,
            kind=event.kind,
            reason=event.reason,
            priority=event.priority,
            lost=lost,
            lost_counted=lost_counted,
        ))

    report.unattributed = dict(unattributed)
    return report


def regret_by_policy(
    algorithms: Sequence[str],
    *,
    window: int,
    memory: int,
    pair=None,
    length: int = 2000,
    domain: int = 50,
    skew: float = 1.0,
    seed: int = 0,
    warmup: Optional[int] = None,
    sink_capacity: int = 1 << 22,
) -> dict:
    """Run each policy on one shared workload with tracing, attribute.

    Returns ``{policy: AttributionReport}``; every report carries the
    shared EXACT output so :func:`format_regret_table` can show the
    gaps the paper's Figures 3–7 plot, decision by decision.  Imports
    live inside the function so :mod:`repro.obs` stays import-light.
    """
    from ..experiments.runner import estimators_for, run_algorithm
    from ..streams import zipf_pair
    from ..streams.tuples import exact_join_size
    from .trace import RingBufferSink, Tracer

    if pair is None:
        pair = zipf_pair(length, domain, skew, seed=seed)
    if warmup is None:
        warmup = 2 * window
    estimators = estimators_for(pair)
    exact = exact_join_size(pair, window, count_from=warmup)

    reports: dict = {}
    for name in algorithms:
        tracer = Tracer(RingBufferSink(sink_capacity))
        result = run_algorithm(
            name, pair, window, memory,
            seed=seed, warmup=warmup, estimators=estimators, trace=tracer,
        )
        if tracer.sink.dropped:
            raise RuntimeError(
                f"{name}: ring buffer dropped {tracer.sink.dropped} events; "
                "raise sink_capacity for a complete attribution"
            )
        label = name if name == "EXACT" else result.policy_name
        reports[label] = attribute_trace(
            result.trace,
            pair,
            window,
            warmup=warmup,
            policy=label,
            exact_output=exact,
            observed_output=result.output_count,
        )
    return reports


def format_regret_table(reports: dict) -> str:
    """Render per-policy regret next to the EXACT − policy gap.

    One row per policy: observed output, the exact reference, the gap,
    regret charged to displacement evictions vs. admission rejections
    vs. budget sheds, and whether the ledger reconciles exactly.
    """
    lines = [
        f"{'policy':<8} {'output':>8} {'exact':>8} {'missed':>8} "
        f"{'evicted':>8} {'rejected':>9} {'budget':>7} {'recon':>6}",
        "-" * 68,
    ]
    for name, report in reports.items():
        by_reason = report.lost_by_reason()
        missed = (
            report.exact_output - report.observed_output
            if report.exact_output is not None and report.observed_output is not None
            else report.total_lost_counted
        )
        lines.append(
            f"{name:<8} {report.observed_output if report.observed_output is not None else '-':>8} "
            f"{report.exact_output if report.exact_output is not None else '-':>8} "
            f"{missed:>8} "
            f"{by_reason.get(REASON_DISPLACED, 0):>8} "
            f"{by_reason.get(REASON_REJECTED, 0):>9} "
            f"{by_reason.get(REASON_BUDGET, 0):>7} "
            f"{'yes' if report.reconciles() else 'NO':>6}"
        )
    return "\n".join(lines)
