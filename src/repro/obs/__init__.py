"""Observability: metrics registry, event tracing, timers, exporters.

Two instrumentation layers share the same null-object discipline:

* **Metrics** — a :class:`MetricsRegistry` collects counters, gauges,
  histograms, per-tick series, and nested phase timings.  Passing
  ``metrics=None`` (the default everywhere) disables instrumentation at
  near-zero cost; :data:`NULL_RECORDER` offers the same interface as
  explicit no-ops.
* **Tracing** — a :class:`Tracer` (see :mod:`repro.obs.trace`) records
  the full per-tuple event lifecycle (arrive / admit / evict / expire /
  join_output / drop) into a pluggable sink; ``trace=None`` keeps it
  entirely off the hot loops, :data:`NULL_TRACER` is the no-op twin.
  :mod:`repro.obs.attribution` replays a trace against the exact
  partner sets to explain which shedding decision lost which outputs;
  :mod:`repro.obs.sampler` folds a trace into per-window time-series
  and :mod:`repro.obs.dashboard` renders them as a live text dashboard.
* **Runtime spans** — one level up from tuples: :mod:`repro.obs.spans`
  records the parallel runtime's task lifecycle (submit / start /
  heartbeat / checkpoint / fault / retry / finish) and
  :mod:`repro.obs.telemetry` streams worker-side events back to the
  supervisor through crash-safe JSONL spools, merged into one global
  timeline (Chrome-trace exportable, fleet-dashboard renderable).

Quick use::

    from repro.obs import MetricsRegistry, Tracer

    metrics, tracer = MetricsRegistry(), Tracer()
    result = engine.run(pair)                # engine records into both
    print(metrics.snapshot()["counters"])    # machine-readable
    print(result.trace[:3])                  # first lifecycle events
"""

from .attribution import (
    AttributionReport,
    EventRegret,
    attribute_trace,
    format_regret_table,
    partner_index,
    regret_by_policy,
)
from .dashboard import play, render_frame
from .export import (
    format_metrics,
    load_metrics_json,
    metrics_to_csv,
    metrics_to_csv_multi,
    metrics_to_json,
    save_metrics_csv,
    save_metrics_json,
)
from .registry import (
    NULL_RECORDER,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRecorder,
    PhaseStat,
    Series,
    active_or_none,
)
from .dashboard import play_fleet, render_fleet
from .sampler import LOST_KIND, Sampler, WindowSample, sample_trace
from .spans import (
    SPAN_KINDS,
    SpanEvent,
    SpanRecorder,
    fleet_rows,
    iter_spans,
    load_spans,
    merge_timeline,
    save_spans,
    span_summary,
    spans_or_none,
    stage_durations,
    stage_stats,
    to_chrome_trace,
)
from .telemetry import TelemetryConfig, TelemetrySession
from .timer import Timer
from .trace import (
    EVENT_KINDS,
    NULL_TRACER,
    JsonlSink,
    NullTracer,
    RingBufferSink,
    TraceEvent,
    Tracer,
    iter_trace,
    load_trace,
    save_trace,
    trace_summary,
    tracing_or_none,
)

__all__ = [
    "AttributionReport",
    "Counter",
    "EVENT_KINDS",
    "EventRegret",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "LOST_KIND",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NULL_TRACER",
    "NullRecorder",
    "NullTracer",
    "PhaseStat",
    "RingBufferSink",
    "SPAN_KINDS",
    "Sampler",
    "Series",
    "SpanEvent",
    "SpanRecorder",
    "TelemetryConfig",
    "TelemetrySession",
    "Timer",
    "TraceEvent",
    "Tracer",
    "WindowSample",
    "active_or_none",
    "attribute_trace",
    "fleet_rows",
    "format_metrics",
    "format_regret_table",
    "iter_spans",
    "iter_trace",
    "load_metrics_json",
    "load_spans",
    "load_trace",
    "merge_timeline",
    "metrics_to_csv",
    "metrics_to_csv_multi",
    "metrics_to_json",
    "partner_index",
    "play",
    "play_fleet",
    "regret_by_policy",
    "render_fleet",
    "render_frame",
    "sample_trace",
    "save_metrics_csv",
    "save_metrics_json",
    "save_spans",
    "save_trace",
    "span_summary",
    "spans_or_none",
    "stage_durations",
    "stage_stats",
    "to_chrome_trace",
    "trace_summary",
    "tracing_or_none",
]
