"""Observability: metrics registry, phase timers, exporters.

Every run of the join engines (and the flow solvers beneath OPT) can
carry a :class:`MetricsRegistry` that collects counters, gauges,
histograms, per-tick series, and nested phase timings.  Passing
``metrics=None`` (the default everywhere) disables instrumentation at
near-zero cost; :data:`NULL_RECORDER` offers the same interface as
explicit no-ops.

Quick use::

    from repro.obs import MetricsRegistry

    metrics = MetricsRegistry()
    with metrics.span("run_join"):
        result = engine.run(pair)            # engine records into it
    print(metrics.snapshot()["counters"])    # machine-readable
"""

from .export import (
    format_metrics,
    load_metrics_json,
    metrics_to_csv,
    metrics_to_json,
    save_metrics_csv,
    save_metrics_json,
)
from .registry import (
    NULL_RECORDER,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRecorder,
    PhaseStat,
    Series,
    active_or_none,
)
from .timer import Timer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "PhaseStat",
    "Series",
    "Timer",
    "active_or_none",
    "format_metrics",
    "load_metrics_json",
    "metrics_to_csv",
    "metrics_to_json",
    "save_metrics_csv",
    "save_metrics_json",
]
