"""Structured event tracing: the layer below the metrics registry.

Aggregate counters (see :mod:`repro.obs.registry`) answer *how many*
tuples were shed; they cannot answer *which* eviction cost *which* join
outputs — yet the paper's PROB/LIFE priorities (Section 3.3) are exactly
bets about a tuple's future partners, and the MAX-subset error is the
set of outputs those bets lost.  Tracing records the full tuple
lifecycle as a stream of :class:`TraceEvent` records so a run can be
replayed, inspected, and attributed after the fact (see
:mod:`repro.obs.attribution`).

Event kinds
-----------
``arrive``
    a tuple arrived on a stream (``tick == arrival``);
``admit``
    the tuple was admitted to the join memory (``priority`` is the
    policy's cached priority right after admission);
``evict``
    a resident was displaced before its natural death — ``reason`` is
    ``"displaced"`` (lost an admission contest at probe-complete tick
    ``tick``) or ``"budget"`` (shed *before* tick ``tick``'s probes
    because the memory budget shrank);
``expire``
    natural window expiry (``reason`` ``"window"``, ``"count"``,
    ``"landmark"``, or ``"queue"`` for tuples that aged out while
    queued in the modular engines);
``join_output``
    a result pair was emitted; the event carries the *resident*
    partner's stream/arrival (the tuple whose retention earned the
    output) — the probing newcomer is implicit (opposite stream, at
    ``tick``).  The always-produced simultaneous pair is recorded once
    with ``reason="simultaneous"``;
``drop``
    a tuple was refused admission (``reason="rejected"``) or shed from
    an input queue before reaching the join (``reason="queue"``).

The disabled fast path
----------------------
Tracing follows the same null-object discipline as the metrics
registry: engines accept ``trace=None`` (the default) and collapse any
disabled tracer to ``None`` once at run entry via
:func:`tracing_or_none`, so the hot loops pay only local ``is not
None`` branches.  :data:`NULL_TRACER` offers the same interface as
explicit no-ops for call sites that prefer not to branch.

Sinks
-----
A :class:`Tracer` forwards every event to one pluggable sink:

* :class:`RingBufferSink` (default) — bounded in-memory buffer keeping
  the most recent events (and counting what it had to forget);
* :class:`JsonlSink` — streams events to a JSON-lines file, one object
  per line, for offline inspection (``repro trace inspect``) and
  attribution (``repro trace attribute``).

:func:`iter_trace` / :func:`load_trace` read a JSONL trace back;
:func:`save_trace` writes any event iterable in the same format.
"""

from __future__ import annotations

import json
import os
from collections import Counter, deque
from pathlib import Path
from typing import Iterable, Iterator, Optional

__all__ = [
    "EVENT_KINDS",
    "EVENT_ARRIVE",
    "EVENT_ADMIT",
    "EVENT_EVICT",
    "EVENT_EXPIRE",
    "EVENT_JOIN_OUTPUT",
    "EVENT_DROP",
    "REASON_DISPLACED",
    "REASON_BUDGET",
    "REASON_REJECTED",
    "REASON_QUEUE",
    "REASON_WINDOW",
    "REASON_SIMULTANEOUS",
    "REASON_LOST_SHARD",
    "NULL_TRACER",
    "JsonlSink",
    "NullTracer",
    "RingBufferSink",
    "TraceEvent",
    "Tracer",
    "iter_trace",
    "load_trace",
    "save_trace",
    "trace_summary",
    "tracing_or_none",
]

EVENT_ARRIVE = "arrive"
EVENT_ADMIT = "admit"
EVENT_EVICT = "evict"
EVENT_EXPIRE = "expire"
EVENT_JOIN_OUTPUT = "join_output"
EVENT_DROP = "drop"

#: Every lifecycle stage a tuple can pass through, in causal order.
EVENT_KINDS = (
    EVENT_ARRIVE,
    EVENT_ADMIT,
    EVENT_EVICT,
    EVENT_EXPIRE,
    EVENT_JOIN_OUTPUT,
    EVENT_DROP,
)

REASON_DISPLACED = "displaced"  # evicted by a newcomer's admission
REASON_BUDGET = "budget"  # shed because the memory budget shrank
REASON_REJECTED = "rejected"  # newcomer refused admission
REASON_QUEUE = "queue"  # shed from (or aged out of) an input queue
REASON_WINDOW = "window"  # natural time-window expiry
REASON_SIMULTANEOUS = "simultaneous"  # the always-produced same-tick pair
# A whole hash shard was abandoned after retry exhaustion (graceful
# degradation, see repro.runtime).  Matches the drop-ledger reason
# repro.core.results.DROP_LOST so traces and ledgers reconcile; the
# sharded merge books it per input tuple of the lost shard.
REASON_LOST_SHARD = "lost_shard"


class TraceEvent:
    """One lifecycle event of one tuple.

    ``(stream, arrival)`` identifies the tuple (the engines admit at
    most one tuple per stream per arrival coordinate); ``tick`` is when
    the event happened; ``priority`` is the policy's cached priority at
    decision time where one exists (``None`` otherwise); ``query``
    labels per-operator events in the multi-query system.

    A ``__slots__`` class rather than a NamedTuple: traced runs build
    one event per lifecycle transition, so construction cost is the
    dominant trace overhead, and the slotted layout constructs ~30%
    faster and 8 bytes smaller per event than the tuple subclass.
    """

    __slots__ = (
        "tick", "stream", "key", "kind", "arrival",
        "priority", "reason", "query",
    )

    def __init__(
        self,
        tick: int,
        stream: str,
        key: object,
        kind: str,
        arrival: int,
        priority: Optional[float] = None,
        reason: Optional[str] = None,
        query: Optional[str] = None,
    ) -> None:
        self.tick = tick
        self.stream = stream
        self.key = key
        self.kind = kind
        self.arrival = arrival
        self.priority = priority
        self.reason = reason
        self.query = query

    def _astuple(self) -> tuple:
        return (
            self.tick, self.stream, self.key, self.kind, self.arrival,
            self.priority, self.reason, self.query,
        )

    def __eq__(self, other: object) -> bool:
        if isinstance(other, TraceEvent):
            return self._astuple() == other._astuple()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:
        fields = ", ".join(
            f"{name}={getattr(self, name)!r}" for name in self.__slots__
        )
        return f"TraceEvent({fields})"

    def to_json(self) -> dict:
        """Compact JSON object (``None`` fields omitted)."""
        record = {
            "tick": self.tick,
            "stream": self.stream,
            "key": self.key,
            "kind": self.kind,
            "arrival": self.arrival,
        }
        if self.priority is not None:
            record["priority"] = self.priority
        if self.reason is not None:
            record["reason"] = self.reason
        if self.query is not None:
            record["query"] = self.query
        return record

    @classmethod
    def from_json(cls, record: dict) -> "TraceEvent":
        return cls(
            tick=record["tick"],
            stream=record["stream"],
            key=record["key"],
            kind=record["kind"],
            arrival=record["arrival"],
            priority=record.get("priority"),
            reason=record.get("reason"),
            query=record.get("query"),
        )


# ----------------------------------------------------------------------
# sinks
# ----------------------------------------------------------------------

class RingBufferSink:
    """Bounded in-memory sink keeping the most recent events.

    ``capacity`` bounds memory use on long runs; ``dropped`` counts the
    events the ring had to forget, so consumers can tell a complete
    trace (``dropped == 0``) from a truncated one.
    """

    __slots__ = ("capacity", "_buffer", "total")

    def __init__(self, capacity: int = 1 << 16) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._buffer: deque[TraceEvent] = deque(maxlen=capacity)
        self.total = 0

    @property
    def dropped(self) -> int:
        return self.total - len(self._buffer)

    def emit(self, event: TraceEvent) -> None:
        self.total += 1
        self._buffer.append(event)

    def events(self) -> list[TraceEvent]:
        """The retained events, oldest first."""
        return list(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)


class JsonlSink:
    """Streams events to a JSON-lines file (one object per line).

    Usable as a context manager; :meth:`close` is idempotent.  The
    parent directory is created on demand.  Accepts any event object
    exposing ``to_json()`` (trace events, runtime span events).

    ``fsync_every=N`` makes the sink crash-safe: after every ``N``
    events the buffer is flushed and fsynced, so a killed worker loses
    at most the last ``N - 1`` events instead of its whole buffered
    tail — which is what keeps fault attribution honest when the
    runtime injects kills.  The default (``None``) keeps the old
    buffered behaviour for in-process traces that close cleanly.

    Encoded lines accumulate in a reused pending buffer and reach the
    file object in one joined write per drain, so the per-event cost is
    one ``json.dumps`` and a list append rather than two stream writes.
    Drains happen at every fsync boundary (before the fsync, preserving
    the ``N - 1`` loss bound), at :data:`PENDING_LIMIT` buffered lines,
    and in :meth:`flush` / :meth:`close`.
    """

    #: Max encoded lines held in the pending buffer before a drain.
    PENDING_LIMIT = 256

    __slots__ = (
        "path", "fsync_every", "total", "_file", "_since_sync", "_pending",
    )

    def __init__(self, path, *, fsync_every: Optional[int] = None) -> None:
        if fsync_every is not None and fsync_every < 1:
            raise ValueError(f"fsync_every must be >= 1, got {fsync_every}")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = self.path.open("w")
        self.fsync_every = fsync_every
        self._since_sync = 0
        self._pending: list[str] = []
        self.total = 0

    def emit(self, event) -> None:
        self.write_json(event.to_json())

    def _drain(self) -> None:
        if self._pending:
            self._file.write("".join(self._pending))
            self._pending.clear()

    def write_json(self, payload: dict) -> None:
        """Append one already-built JSON object (the telemetry hot path
        uses this to skip event-object construction)."""
        self._pending.append(json.dumps(payload, default=str) + "\n")
        self.total += 1
        if self.fsync_every is not None:
            self._since_sync += 1
            if self._since_sync >= self.fsync_every:
                self._drain()
                self._file.flush()
                os.fsync(self._file.fileno())
                self._since_sync = 0
                return
        if len(self._pending) >= self.PENDING_LIMIT:
            self._drain()

    def flush(self) -> None:
        """Force the buffered tail to disk now (flush + fsync)."""
        if self._file is not None:
            self._drain()
            self._file.flush()
            os.fsync(self._file.fileno())
            self._since_sync = 0

    def close(self) -> None:
        if self._file is not None:
            self._drain()
            self._file.close()
            self._file = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# the tracer and its disabled twin
# ----------------------------------------------------------------------

class Tracer:
    """Forwards :class:`TraceEvent` records to one sink.

    The engines hold the tracer for the duration of one run; its
    ``emit`` is the only hot-path entry point.  ``collect()`` returns
    the buffered events when the sink retains them (ring buffer) and
    ``None`` for streaming sinks.
    """

    enabled = True

    __slots__ = ("sink", "emit")

    def __init__(self, sink=None) -> None:
        self.sink = RingBufferSink() if sink is None else sink
        self.emit = self.sink.emit  # direct bound-method dispatch

    def collect(self) -> Optional[list[TraceEvent]]:
        events = getattr(self.sink, "events", None)
        return events() if callable(events) else None

    def close(self) -> None:
        close = getattr(self.sink, "close", None)
        if callable(close):
            close()


class NullTracer:
    """Tracer look-alike whose every operation is a no-op.

    ``enabled`` is ``False`` so :func:`tracing_or_none` collapses it to
    ``None`` at run entry — the hot loops never see it.
    """

    enabled = False
    sink = None

    def emit(self, event: TraceEvent) -> None:
        pass

    def collect(self) -> None:
        return None

    def close(self) -> None:
        pass


#: Shared no-op tracer; safe to pass anywhere a tracer is expected.
NULL_TRACER = NullTracer()


def tracing_or_none(trace) -> Optional[Tracer]:
    """Collapse ``None`` / disabled tracers to ``None`` (run-entry guard)."""
    if trace is None or not trace.enabled:
        return None
    return trace


# ----------------------------------------------------------------------
# readers / writers
# ----------------------------------------------------------------------

def save_trace(events: Iterable[TraceEvent], path) -> Path:
    """Write events as JSONL; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        for event in events:
            handle.write(json.dumps(event.to_json(), default=str))
            handle.write("\n")
    return path


def iter_trace(path) -> Iterator[TraceEvent]:
    """Stream events back from a JSONL trace file."""
    with Path(path).open() as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{line_number}: not a JSONL trace line ({error})"
                ) from error
            yield TraceEvent.from_json(record)


def load_trace(path) -> list[TraceEvent]:
    """Read a whole JSONL trace into memory."""
    return list(iter_trace(path))


def trace_summary(events: Iterable[TraceEvent]) -> dict:
    """Aggregate view of a trace: counts per kind/stream/reason, span.

    Used by ``repro trace inspect`` and handy in tests; returns a plain
    dict so it serialises directly.
    """
    kinds: Counter = Counter()
    streams: Counter = Counter()
    reasons: Counter = Counter()
    evicted_keys: Counter = Counter()
    first = last = None
    total = 0
    for event in events:
        total += 1
        kinds[event.kind] += 1
        streams[event.stream] += 1
        if event.reason is not None:
            reasons[f"{event.kind}/{event.reason}"] += 1
        if event.kind in (EVENT_EVICT, EVENT_DROP):
            evicted_keys[event.key] += 1
        if first is None or event.tick < first:
            first = event.tick
        if last is None or event.tick > last:
            last = event.tick
    return {
        "events": total,
        "kinds": dict(kinds),
        "streams": dict(streams),
        "reasons": dict(reasons),
        "tick_span": (first, last),
        "top_shed_keys": evicted_keys.most_common(5),
    }
