"""Live text dashboard: animate a traced run window by window.

Renders the :mod:`repro.obs.sampler` time-series as plain ANSI frames —
no curses, no external TUI dependency — so it works in any terminal
(and, with colour off and ``once=True``, in a pipe or a test).  Each
frame shows the run so far: per-kind event rates as aligned bar charts,
memory occupancy, and a cumulative tally, exactly the quantities the
paper's shedding story is about (arrival pressure vs. bounded memory
vs. produced output).  Traces from degraded runs get one extra row:
drops whose reason is ``lost_shard`` (a whole abandoned shard) render
as a ``lost`` line so the degradation is visible, not folded into the
ordinary drop count.

Fleet mode (:func:`render_fleet` / :func:`play_fleet`) renders a runtime
*span* timeline (see :mod:`repro.obs.spans`) instead of a tuple trace:
one row per shard with its status, attempt/retry counts, checkpoint
activity, last-heartbeat counters, and heartbeat age — the per-node
progress/straggler view a parallel run needs.

The renderers are split from the players so tests can assert on frames
without a terminal: :func:`render_frame` / :func:`render_fleet` are pure
data-in/string-out; :func:`play` / :func:`play_fleet` handle clearing,
pacing, and interrupts.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Optional, Sequence

from .sampler import LOST_KIND, WindowSample, sample_trace
from .spans import SPAN_HEARTBEAT, fleet_rows, merge_timeline
from .trace import (
    EVENT_ADMIT,
    EVENT_ARRIVE,
    EVENT_DROP,
    EVENT_EVICT,
    EVENT_EXPIRE,
    EVENT_JOIN_OUTPUT,
)

__all__ = ["play", "play_fleet", "render_fleet", "render_frame"]

CLEAR = "\x1b[H\x1b[J"
BOLD = "\x1b[1m"
DIM = "\x1b[2m"
RESET = "\x1b[0m"

#: rows of the per-window panel: (label, event kind, bar glyph)
_PANEL = (
    ("arrive", EVENT_ARRIVE, "#"),
    ("admit", EVENT_ADMIT, "="),
    ("output", EVENT_JOIN_OUTPUT, "+"),
    ("evict", EVENT_EVICT, "x"),
    ("drop", EVENT_DROP, "x"),
    ("expire", EVENT_EXPIRE, "."),
)

#: extra row shown only when the trace carries ``lost_shard`` drops —
#: fault-free runs keep the classic six-row panel.
_LOST_ROW = ("lost", LOST_KIND, "!")


def _bar(value: int, peak: int, width: int, glyph: str) -> str:
    if peak <= 0 or value <= 0:
        return ""
    return glyph * max(1, round(width * value / peak))


def render_frame(
    windows: Sequence[WindowSample],
    upto: int,
    *,
    title: str = "repro dash",
    bar_width: int = 40,
    color: bool = True,
) -> str:
    """One dashboard frame: the state after ``windows[:upto + 1]``.

    Bars are scaled to the whole run's peak per-kind rate so the frame
    sequence animates coherently (a bar never rescales mid-playback).
    """
    bold, dim, reset = (BOLD, DIM, RESET) if color else ("", "", "")
    shown = windows[: upto + 1]
    lines = []
    if not shown:
        return f"{bold}{title}{reset}\n  (no trace events)"
    current = shown[-1]
    panel = _PANEL
    if any(w.get(LOST_KIND) for w in windows):
        panel = _PANEL + (_LOST_ROW,)
    peaks = {
        kind: max((w.get(kind) for w in windows), default=0)
        for _, kind, _ in panel
    }
    peak_occupancy = max((w.occupancy for w in windows), default=0)
    totals = {kind: sum(w.get(kind) for w in shown) for _, kind, _ in panel}

    lines.append(
        f"{bold}{title}{reset}  ticks {current.start}..{current.end}"
        f"  (window {len(shown)}/{len(windows)})"
    )
    lines.append("")
    for label, kind, glyph in panel:
        value = current.get(kind)
        bar = _bar(value, peaks[kind], bar_width, glyph)
        lines.append(
            f"  {label:<7} {value:>6}/win {bar:<{bar_width}} "
            f"{dim}total {totals[kind]}{reset}"
        )
    occupancy_bar = _bar(current.occupancy, peak_occupancy, bar_width, "o")
    lines.append(
        f"  {'memory':<7} {current.occupancy:>6} res {occupancy_bar:<{bar_width}} "
        f"{dim}peak {peak_occupancy}{reset}"
    )
    lines.append("")
    produced = totals[EVENT_JOIN_OUTPUT]
    shed = totals[EVENT_EVICT] + totals[EVENT_DROP]
    tally = (
        f"  produced {produced} outputs, shed {shed} tuples "
        f"({totals[EVENT_EVICT]} evicted, {totals[EVENT_DROP]} dropped)"
    )
    if totals.get(LOST_KIND):
        tally += f" — {totals[LOST_KIND]} of them to lost shards"
    lines.append(tally)
    return "\n".join(lines)


def play(
    events,
    *,
    width: int = 50,
    fps: float = 8.0,
    title: str = "repro dash",
    once: bool = False,
    color: Optional[bool] = None,
    out=None,
    sleep: Callable[[float], None] = time.sleep,
) -> int:
    """Animate a trace; returns the number of frames rendered.

    ``once=True`` skips the animation and prints only the final frame —
    the mode tests and non-TTY pipes use.  ``color`` defaults to "is
    ``out`` a TTY"; ``sleep`` is injectable so tests run at full speed.
    """
    if out is None:
        out = sys.stdout
    if color is None:
        color = bool(getattr(out, "isatty", lambda: False)())
    windows = sample_trace(events, width=width)
    if not windows:
        print(f"{title}: trace is empty", file=out)
        return 0
    if once:
        print(render_frame(windows, len(windows) - 1, title=title, color=color), file=out)
        return 1

    frames = 0
    try:
        for upto in range(len(windows)):
            out.write(CLEAR if color else "\n")
            out.write(render_frame(windows, upto, title=title, color=color))
            out.write("\n")
            out.flush()
            frames += 1
            if upto < len(windows) - 1:
                sleep(1.0 / fps)
    except KeyboardInterrupt:
        out.write("\n")
    return frames


# ----------------------------------------------------------------------
# fleet mode: one row per shard of a parallel run
# ----------------------------------------------------------------------

#: status → glyph, ordered from healthy to bad.
_FLEET_GLYPHS = {
    "queued": "·",
    "running": ">",
    "retrying": "~",
    "done": "ok",
    "lost": "XX",
}


def render_fleet(
    events,
    *,
    upto_ts: Optional[float] = None,
    title: str = "repro dash --fleet",
    color: bool = True,
) -> str:
    """One fleet frame: the per-shard state table at ``upto_ts``.

    ``events`` is a span timeline (see
    :func:`repro.obs.spans.merge_timeline`); each shard renders as one
    row with status, attempts/retries, checkpoint count, resume marker,
    the last heartbeat's tick/output/occupancy/rate, and the heartbeat
    age — stale ages flag stragglers, ``lost`` flags degradation.
    """
    bold, dim, reset = (BOLD, DIM, RESET) if color else ("", "", "")
    rows = fleet_rows(events, upto_ts=upto_ts)
    if not rows:
        return f"{bold}{title}{reset}\n  (no span events)"
    lines = [
        f"{bold}{title}{reset}  {len(rows)} shards",
        "",
        f"  {'shard':<6} {'st':<3} {'status':<9} {'att':>3} {'rty':>3} "
        f"{'ckpt':>4} {'res':>3} {'tick':>7} {'output':>8} {'occ':>5} "
        f"{'tup/s':>8} {'hb age':>8}",
        "  " + "-" * 76,
    ]
    for row in rows:
        beat = row["heartbeat"] or {}
        age = row["heartbeat_age"]
        styled = bold if row["status"] in ("lost", "retrying") else ""
        lines.append(
            f"  {styled}{row['shard']:<6} "
            f"{_FLEET_GLYPHS.get(row['status'], '?'):<3} "
            f"{row['status']:<9} {row['attempts']:>3} {row['retries']:>3} "
            f"{row['checkpoints']:>4} {'yes' if row['restored'] else '-':>3} "
            f"{beat.get('tick', '-')!s:>7} {beat.get('output', '-')!s:>8} "
            f"{beat.get('occupancy', '-')!s:>5} "
            f"{beat.get('tuples_per_s', '-')!s:>8} "
            f"{f'{age:.2f}s' if age is not None else '-':>8}"
            f"{reset if styled else ''}"
        )
    lost = sum(1 for row in rows if row["status"] == "lost")
    done = sum(1 for row in rows if row["status"] == "done")
    retries = sum(row["retries"] for row in rows)
    lines.append("")
    lines.append(
        f"  {done}/{len(rows)} shards done, {lost} lost, "
        f"{retries} retries {dim}(att=attempts, rty=retries, "
        f"ckpt=checkpoint saves, res=resumed){reset}"
    )
    return "\n".join(lines)


def play_fleet(
    events,
    *,
    fps: float = 8.0,
    title: str = "repro dash --fleet",
    once: bool = False,
    color: Optional[bool] = None,
    out=None,
    sleep: Callable[[float], None] = time.sleep,
) -> int:
    """Replay a span timeline as animated fleet frames; returns frames.

    The timeline is replayed in recorded order with one frame per
    heartbeat wave (any shard's heartbeat advances the clock), ending on
    the complete table.  ``once=True`` prints only the final state.
    """
    if out is None:
        out = sys.stdout
    if color is None:
        color = bool(getattr(out, "isatty", lambda: False)())
    timeline = merge_timeline(events)
    if not timeline:
        print(f"{title}: no span events", file=out)
        return 0
    if once:
        print(render_fleet(timeline, title=title, color=color), file=out)
        return 1

    checkpoints = [
        event.ts for event in timeline if event.kind == SPAN_HEARTBEAT
    ]
    checkpoints.append(timeline[-1].ts)
    frames = 0
    try:
        for upto_ts in checkpoints:
            out.write(CLEAR if color else "\n")
            out.write(
                render_fleet(timeline, upto_ts=upto_ts, title=title, color=color)
            )
            out.write("\n")
            out.flush()
            frames += 1
            if upto_ts != checkpoints[-1]:
                sleep(1.0 / fps)
    except KeyboardInterrupt:
        out.write("\n")
    return frames
