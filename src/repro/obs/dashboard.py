"""Live text dashboard: animate a traced run window by window.

Renders the :mod:`repro.obs.sampler` time-series as plain ANSI frames —
no curses, no external TUI dependency — so it works in any terminal
(and, with colour off and ``once=True``, in a pipe or a test).  Each
frame shows the run so far: per-kind event rates as aligned bar charts,
memory occupancy, and a cumulative tally, exactly the quantities the
paper's shedding story is about (arrival pressure vs. bounded memory
vs. produced output).

The renderer is split from the player so tests can assert on frames
without a terminal: :func:`render_frame` is pure string-in/string-out;
:func:`play` handles clearing, pacing, and interrupts.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Optional, Sequence

from .sampler import WindowSample, sample_trace
from .trace import (
    EVENT_ADMIT,
    EVENT_ARRIVE,
    EVENT_DROP,
    EVENT_EVICT,
    EVENT_EXPIRE,
    EVENT_JOIN_OUTPUT,
)

__all__ = ["play", "render_frame"]

CLEAR = "\x1b[H\x1b[J"
BOLD = "\x1b[1m"
DIM = "\x1b[2m"
RESET = "\x1b[0m"

#: rows of the per-window panel: (label, event kind, bar glyph)
_PANEL = (
    ("arrive", EVENT_ARRIVE, "#"),
    ("admit", EVENT_ADMIT, "="),
    ("output", EVENT_JOIN_OUTPUT, "+"),
    ("evict", EVENT_EVICT, "x"),
    ("drop", EVENT_DROP, "x"),
    ("expire", EVENT_EXPIRE, "."),
)


def _bar(value: int, peak: int, width: int, glyph: str) -> str:
    if peak <= 0 or value <= 0:
        return ""
    return glyph * max(1, round(width * value / peak))


def render_frame(
    windows: Sequence[WindowSample],
    upto: int,
    *,
    title: str = "repro dash",
    bar_width: int = 40,
    color: bool = True,
) -> str:
    """One dashboard frame: the state after ``windows[:upto + 1]``.

    Bars are scaled to the whole run's peak per-kind rate so the frame
    sequence animates coherently (a bar never rescales mid-playback).
    """
    bold, dim, reset = (BOLD, DIM, RESET) if color else ("", "", "")
    shown = windows[: upto + 1]
    lines = []
    if not shown:
        return f"{bold}{title}{reset}\n  (no trace events)"
    current = shown[-1]
    peaks = {
        kind: max((w.get(kind) for w in windows), default=0)
        for _, kind, _ in _PANEL
    }
    peak_occupancy = max((w.occupancy for w in windows), default=0)
    totals = {kind: sum(w.get(kind) for w in shown) for _, kind, _ in _PANEL}

    lines.append(
        f"{bold}{title}{reset}  ticks {current.start}..{current.end}"
        f"  (window {len(shown)}/{len(windows)})"
    )
    lines.append("")
    for label, kind, glyph in _PANEL:
        value = current.get(kind)
        bar = _bar(value, peaks[kind], bar_width, glyph)
        lines.append(
            f"  {label:<7} {value:>6}/win {bar:<{bar_width}} "
            f"{dim}total {totals[kind]}{reset}"
        )
    occupancy_bar = _bar(current.occupancy, peak_occupancy, bar_width, "o")
    lines.append(
        f"  {'memory':<7} {current.occupancy:>6} res {occupancy_bar:<{bar_width}} "
        f"{dim}peak {peak_occupancy}{reset}"
    )
    lines.append("")
    produced = totals[EVENT_JOIN_OUTPUT]
    shed = totals[EVENT_EVICT] + totals[EVENT_DROP]
    lines.append(
        f"  produced {produced} outputs, shed {shed} tuples "
        f"({totals[EVENT_EVICT]} evicted, {totals[EVENT_DROP]} dropped)"
    )
    return "\n".join(lines)


def play(
    events,
    *,
    width: int = 50,
    fps: float = 8.0,
    title: str = "repro dash",
    once: bool = False,
    color: Optional[bool] = None,
    out=None,
    sleep: Callable[[float], None] = time.sleep,
) -> int:
    """Animate a trace; returns the number of frames rendered.

    ``once=True`` skips the animation and prints only the final frame —
    the mode tests and non-TTY pipes use.  ``color`` defaults to "is
    ``out`` a TTY"; ``sleep`` is injectable so tests run at full speed.
    """
    if out is None:
        out = sys.stdout
    if color is None:
        color = bool(getattr(out, "isatty", lambda: False)())
    windows = sample_trace(events, width=width)
    if not windows:
        print(f"{title}: trace is empty", file=out)
        return 0
    if once:
        print(render_frame(windows, len(windows) - 1, title=title, color=color), file=out)
        return 1

    frames = 0
    try:
        for upto in range(len(windows)):
            out.write(CLEAR if color else "\n")
            out.write(render_frame(windows, upto, title=title, color=color))
            out.write("\n")
            out.flush()
            frames += 1
            if upto < len(windows) - 1:
                sleep(1.0 / fps)
    except KeyboardInterrupt:
        out.write("\n")
    return frames
