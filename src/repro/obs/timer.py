"""Wall-clock timing helpers for phase instrumentation.

Two granularities:

* ``registry.span(name)`` (see :mod:`repro.obs.registry`) — nested
  context-manager spans for coarse phases (workload generation, an
  engine run, report export); paths join with ``/``.
* :class:`Timer` — an explicit start/stop accumulator for hot-loop
  sections that fire thousands of times per run.  The engines create one
  per section only when metrics are enabled, accumulate into plain
  floats, and flush the totals to the registry once at the end — the
  disabled path never touches a clock.
"""

from __future__ import annotations

from time import perf_counter

__all__ = ["Timer"]


class Timer:
    """Accumulating section timer: ``timer.start() ... timer.stop()``.

    Also usable as a context manager for one-shot measurements.  The
    accumulated total is attached to a registry phase path via
    :meth:`flush`.
    """

    __slots__ = ("seconds", "count", "_start")

    def __init__(self) -> None:
        self.seconds = 0.0
        self.count = 0
        self._start = 0.0

    def start(self) -> None:
        self._start = perf_counter()

    def stop(self) -> None:
        self.seconds += perf_counter() - self._start
        self.count += 1

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def flush(self, registry, path: str) -> None:
        """Record the accumulated time as a phase on ``registry``."""
        if self.count:
            registry.record_phase(path, self.seconds, self.count)
