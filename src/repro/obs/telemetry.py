"""Cross-process telemetry: worker heartbeats spooled back to the parent.

The span layer (:mod:`repro.obs.spans`) defines *what* a task-lifecycle
event is; this module is the *transport* that gets worker-side events
across the process boundary.  A :class:`~concurrent.futures.Future` only
carries a task's final result — while a shard runs (or hangs, or dies)
the supervisor sees nothing.  So each worker attempt appends its events
to a private JSONL *spool file* under a run-shared directory, crash-safe
via the :class:`~repro.obs.trace.JsonlSink` fsync interval: a killed
worker loses at most the last ``fsync_every - 1`` events, never its
whole buffered tail.  After the run the supervisor reads every spool
back (tolerating the truncated final line a kill can leave) and merges
them with its own events into one globally-ordered timeline.

Two halves
----------

:class:`TelemetrySession` — supervisor side.  Owns the spool directory,
a :class:`~repro.obs.spans.SpanRecorder` for supervisor events (submit /
retry / timeout / finish / merge / degrade), and the picklable
:class:`TelemetryConfig` that rides to workers inside the dispatch
tuple.  ``merged_timeline()`` folds both sides.

Module-level worker context — worker side, mirroring
:mod:`repro.runtime.faults`: the pool shim calls :func:`activate` /
:func:`deactivate` around each attempt, the shard entry point calls
:func:`annotate` with its shard index, and the engine's per-tick hook
calls :func:`maybe_heartbeat`.  Every function is a no-op behind one
module-global read when no context is armed, so unsupervised runs pay
nothing.

Heartbeats carry the engine's live counters (tick, outputs, arrivals,
memory occupancy, drop count — see ``AsyncJoinEngine.progress``) plus a
derived ``tuples_per_s`` rate over the interval since the previous
heartbeat.  Timestamps are absolute ``time.time()`` values: workers are
forked/spawned on the same machine as the supervisor, so one wall clock
orders both sides (the span layer clamps the sub-millisecond negative
durations scheduling jitter can produce).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from .spans import (
    SOURCE_WORKER,
    SPAN_CHECKPOINT_RESTORE,
    SPAN_CHECKPOINT_SAVE,
    SPAN_FAIL,
    SPAN_FAULT,
    SPAN_HEARTBEAT,
    SPAN_START,
    SpanEvent,
    SpanRecorder,
    iter_spans,
    merge_timeline,
)
from .trace import JsonlSink

__all__ = [
    "SPOOL_SUFFIX",
    "TelemetryConfig",
    "TelemetrySession",
    "activate",
    "annotate",
    "checkpoint_restored",
    "checkpoint_saved",
    "deactivate",
    "is_active",
    "maybe_heartbeat",
    "record_failure",
    "record_fault",
    "spool_path",
]

#: Spool files are ``cell0003.attempt02.spool.jsonl`` under the root.
SPOOL_SUFFIX = ".spool.jsonl"


@dataclass(frozen=True)
class TelemetryConfig:
    """Everything a worker needs to emit telemetry — plain picklable data.

    ``root`` is the run-shared spool directory; ``heartbeat_every`` the
    tick interval between heartbeats; ``fsync_every`` the event interval
    between fsyncs of the spool (the crash-safety / overhead dial).
    """

    root: str
    heartbeat_every: int = 16
    fsync_every: int = 32

    def __post_init__(self) -> None:
        if self.heartbeat_every < 1:
            raise ValueError(
                f"heartbeat_every must be >= 1, got {self.heartbeat_every}"
            )
        if self.fsync_every < 1:
            raise ValueError(
                f"fsync_every must be >= 1, got {self.fsync_every}"
            )


def spool_path(root, cell: int, attempt: int) -> Path:
    """The spool file of one attempt — unique per ``(cell, attempt)``.

    Uniqueness matters: an abandoned (timed-out) attempt's worker cannot
    be killed and may still be writing while its retry runs; giving each
    attempt its own file keeps both streams intact.
    """
    return Path(root) / f"cell{cell:04d}.attempt{attempt:02d}{SPOOL_SUFFIX}"


# ----------------------------------------------------------------------
# worker-side context
# ----------------------------------------------------------------------

class _WorkerContext:
    """One armed attempt: its identity, spool sink, and rate state."""

    def __init__(
        self,
        config: TelemetryConfig,
        cell: int,
        attempt: int,
        label: Optional[str],
    ) -> None:
        self.config = config
        self.cell = cell
        self.attempt = attempt
        self.label = label
        self.shard: Optional[int] = None
        self.sink = JsonlSink(
            spool_path(config.root, cell, attempt),
            fsync_every=config.fsync_every,
        )
        self._last_beat: Optional[tuple] = None  # (ts, arrivals)

    def emit(self, kind: str, *, tick=None, data=None) -> dict:
        # Built as a plain dict (the SpanEvent.to_json shape) rather
        # than through SpanEvent — this is the per-heartbeat hot path.
        payload = {
            "ts": time.time(),
            "kind": kind,
            "cell": self.cell,
            "attempt": self.attempt,
            "source": SOURCE_WORKER,
        }
        if self.shard is not None:
            payload["shard"] = self.shard
        if tick is not None:
            payload["tick"] = tick
        if self.label is not None:
            payload["label"] = self.label
        if data is not None:
            payload["data"] = data
        self.sink.write_json(payload)
        return payload

    def close(self) -> None:
        self.sink.close()


#: The attempt currently emitting telemetry in this process, or None.
_ACTIVE: Optional[_WorkerContext] = None


def activate(
    config: TelemetryConfig,
    *,
    cell: int,
    attempt: int,
    label: Optional[str] = None,
) -> None:
    """Arm the context for one attempt and emit its ``start`` span."""
    global _ACTIVE
    if _ACTIVE is not None:  # a prior attempt's context leaked; drop it
        _ACTIVE.close()
    _ACTIVE = _WorkerContext(config, cell, attempt, label)
    _ACTIVE.emit(SPAN_START)


def deactivate() -> None:
    """Disarm after the attempt finishes (success or failure)."""
    global _ACTIVE
    if _ACTIVE is not None:
        _ACTIVE.close()
        _ACTIVE = None


def is_active() -> bool:
    """Whether this process is currently emitting telemetry."""
    return _ACTIVE is not None


def annotate(*, shard: Optional[int] = None) -> None:
    """Stamp subsequent events with coordinates the dispatcher lacks.

    The pool knows only the cell index; the shard entry point calls this
    with its shard so heartbeats carry both.
    """
    if _ACTIVE is None:
        return
    if shard is not None:
        _ACTIVE.shard = shard


def maybe_heartbeat(tick: int, progress) -> None:
    """Emit a heartbeat when ``tick`` is on the interval; no-op otherwise.

    ``progress`` is a zero-argument callable returning the engine's live
    counters — called *only* when a heartbeat is due, so off-interval
    ticks pay one global read and one modulo.  The emitted data adds
    ``tuples_per_s`` (arrivals per wall second since the last beat).
    """
    context = _ACTIVE
    if context is None or tick % context.config.heartbeat_every != 0:
        return
    counters = progress()  # a fresh dict per call; mutated in place
    now = time.time()
    arrivals = counters.get("arrivals", 0)
    if context._last_beat is not None:
        elapsed = now - context._last_beat[0]
        if elapsed > 0:
            counters["tuples_per_s"] = round(
                (arrivals - context._last_beat[1]) / elapsed, 3
            )
    context._last_beat = (now, arrivals)
    context.emit(SPAN_HEARTBEAT, tick=tick, data=counters)


def checkpoint_saved(
    seconds: float, *, tick: Optional[int] = None, key: Optional[str] = None
) -> None:
    """Record one checkpoint save and its cost (emitted by the store)."""
    if _ACTIVE is None:
        return
    data = {"seconds": round(seconds, 6)}
    if key is not None:
        data["key"] = key
    _ACTIVE.emit(SPAN_CHECKPOINT_SAVE, tick=tick, data=data)


def checkpoint_restored(
    *, tick: Optional[int] = None, key: Optional[str] = None
) -> None:
    """Record a resume from checkpoint (``tick`` is the resumed tick)."""
    if _ACTIVE is None:
        return
    data = {"key": key} if key is not None else None
    _ACTIVE.emit(SPAN_CHECKPOINT_RESTORE, tick=tick, data=data)


def record_fault(tick: int, *, kind: str = "kill") -> None:
    """Record an injected fault firing, then make the spool durable.

    Called just before the fault's exception unwinds the attempt — the
    real-world analogue is a process death, so the spool is flushed hard
    here rather than waiting out the fsync interval.
    """
    if _ACTIVE is None:
        return
    _ACTIVE.emit(SPAN_FAULT, tick=tick, data={"kind": kind})
    _ACTIVE.sink.flush()


def record_failure(exc: BaseException) -> None:
    """Record the attempt's terminal error and flush the spool."""
    if _ACTIVE is None:
        return
    _ACTIVE.emit(
        SPAN_FAIL,
        data={"error": type(exc).__name__, "message": str(exc)},
    )
    _ACTIVE.sink.flush()


# ----------------------------------------------------------------------
# supervisor-side session
# ----------------------------------------------------------------------

class TelemetrySession:
    """One run's telemetry plane, owned by the supervising process.

    Creates the spool directory, records supervisor-side spans, and
    builds the :class:`TelemetryConfig` workers are handed.  After the
    dispatch, :meth:`merged_timeline` folds the supervisor's events and
    every worker spool into one deterministic global timeline.
    """

    def __init__(
        self,
        root,
        *,
        heartbeat_every: int = 16,
        fsync_every: int = 32,
        clock=time.time,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.spans = SpanRecorder(clock)
        self.config = TelemetryConfig(
            root=str(self.root),
            heartbeat_every=heartbeat_every,
            fsync_every=fsync_every,
        )

    def worker_events(self) -> list[SpanEvent]:
        """Every event read back from the worker spools.

        Non-strict reads: an abandoned attempt's worker may still be
        mid-line, and a killed one may have left a truncated tail —
        everything fsynced before that point is intact and returned.
        """
        events: list[SpanEvent] = []
        for path in sorted(self.root.glob(f"*{SPOOL_SUFFIX}")):
            events.extend(iter_spans(path, strict=False))
        return events

    def merged_timeline(self) -> list[SpanEvent]:
        """Supervisor + worker events in one deterministic global order."""
        return merge_timeline(self.spans.events, self.worker_events())
