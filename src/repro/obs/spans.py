"""Runtime spans: the task-lifecycle layer above tuple tracing.

:mod:`repro.obs.trace` answers what happened to one *tuple*;

this module answers what happened to one *task* — a grid cell's
attempt inside the parallel runtime (see :mod:`repro.runtime`).  The
supervisor and every worker emit :class:`SpanEvent` records for each
lifecycle stage:

``submit``
    the supervisor dispatched an attempt of a cell;
``start``
    the worker began executing the attempt (queue time is
    ``start - submit``);
``heartbeat``
    periodic worker progress (tick, outputs, arrivals, memory
    occupancy, drop counts, tuples/s — see
    :mod:`repro.obs.telemetry`);
``checkpoint_save`` / ``checkpoint_restore``
    the worker persisted / resumed engine state
    (:mod:`repro.runtime.checkpoint`);
``fault``
    an injected fault fired inside the engine's per-tick hook
    (:mod:`repro.runtime.faults`);
``fail`` / ``timeout``
    the attempt ended in an error / was abandoned past its deadline;
``retry``
    the supervisor scheduled the next attempt (backoff is
    ``next start - retry``);
``finish``
    the attempt returned a result;
``merge`` / ``degrade``
    the run-level fold of per-shard results — ``degrade`` names each
    shard abandoned after retry exhaustion.

Events carry absolute wall-clock timestamps (workers share the parent's
clock on one machine); :func:`merge_timeline` folds the supervisor's
events and every worker spool into one globally-ordered timeline keyed
by ``(cell, attempt, shard)``, with a total tie-break order so merged
timelines are deterministic however the writers interleaved.

Consumers:

* :func:`to_chrome_trace` — Chrome trace-event / Perfetto JSON
  (``repro trace timeline``; load the file in ``chrome://tracing`` or
  https://ui.perfetto.dev);
* :func:`stage_durations` / :func:`stage_stats` — per-stage latency
  distributions (queueing, run time, checkpoint save cost, retry
  backoff) summarised with the Greenwald-Khanna quantile sketch from
  :mod:`repro.stats`;
* :func:`fleet_rows` — per-shard fleet state (last heartbeat age,
  retry count, lost/finished status) for ``repro dash --fleet``.

The recorder follows the same null-object discipline as the metrics
registry and the tracer: the runtime accepts ``spans=None`` (the
default) and :func:`spans_or_none` collapses disabled recorders at
entry, so the unsupervised paths pay nothing.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Iterable, Iterator, NamedTuple, Optional

from ..stats.quantiles import GKQuantileSummary

__all__ = [
    "SPAN_KINDS",
    "SPAN_SUBMIT",
    "SPAN_START",
    "SPAN_HEARTBEAT",
    "SPAN_CHECKPOINT_SAVE",
    "SPAN_CHECKPOINT_RESTORE",
    "SPAN_FAULT",
    "SPAN_FAIL",
    "SPAN_TIMEOUT",
    "SPAN_RETRY",
    "SPAN_FINISH",
    "SPAN_MERGE",
    "SPAN_DEGRADE",
    "SOURCE_SUPERVISOR",
    "SOURCE_WORKER",
    "SpanEvent",
    "SpanRecorder",
    "fleet_rows",
    "iter_spans",
    "load_spans",
    "merge_timeline",
    "save_spans",
    "span_summary",
    "spans_or_none",
    "stage_durations",
    "stage_stats",
    "to_chrome_trace",
]

SPAN_SUBMIT = "submit"
SPAN_START = "start"
SPAN_HEARTBEAT = "heartbeat"
SPAN_CHECKPOINT_SAVE = "checkpoint_save"
SPAN_CHECKPOINT_RESTORE = "checkpoint_restore"
SPAN_FAULT = "fault"
SPAN_FAIL = "fail"
SPAN_TIMEOUT = "timeout"
SPAN_RETRY = "retry"
SPAN_FINISH = "finish"
SPAN_MERGE = "merge"
SPAN_DEGRADE = "degrade"

#: Every task-lifecycle stage, in causal order within one attempt.
SPAN_KINDS = (
    SPAN_SUBMIT,
    SPAN_START,
    SPAN_HEARTBEAT,
    SPAN_CHECKPOINT_SAVE,
    SPAN_CHECKPOINT_RESTORE,
    SPAN_FAULT,
    SPAN_FAIL,
    SPAN_TIMEOUT,
    SPAN_RETRY,
    SPAN_FINISH,
    SPAN_MERGE,
    SPAN_DEGRADE,
)

SOURCE_SUPERVISOR = "supervisor"
SOURCE_WORKER = "worker"

#: Causal rank of each kind — the timestamp tie-break that keeps merged
#: timelines deterministic when writers share a clock tick.
_KIND_ORDER = {kind: rank for rank, kind in enumerate(SPAN_KINDS)}

#: The kinds that end one attempt (close its ``start`` span).
TERMINAL_KINDS = (SPAN_FINISH, SPAN_FAIL, SPAN_TIMEOUT)


class SpanEvent(NamedTuple):
    """One task-lifecycle event of one grid-cell attempt.

    ``ts`` is an absolute wall-clock timestamp (``time.time()``);
    ``cell`` is the grid-cell index (``None`` for run-level events such
    as ``merge``); ``attempt`` is 1-based; ``shard`` is the hash-shard
    index when the cell is a shard run (it usually equals ``cell``, but
    the worker stamps it explicitly so the key survives relabelling).
    ``data`` holds kind-specific payload: heartbeat counters, error
    names, checkpoint costs.
    """

    ts: float
    kind: str
    cell: Optional[int]
    attempt: int
    source: str
    shard: Optional[int] = None
    tick: Optional[int] = None
    label: Optional[str] = None
    data: Optional[dict] = None

    @property
    def key(self) -> tuple:
        """The ``(cell, attempt, shard)`` coordinate of the event."""
        return (self.cell, self.attempt, self.shard)

    def to_json(self) -> dict:
        """Compact JSON object (``None`` fields omitted)."""
        record = {
            "ts": self.ts,
            "kind": self.kind,
            "cell": self.cell,
            "attempt": self.attempt,
            "source": self.source,
        }
        if self.shard is not None:
            record["shard"] = self.shard
        if self.tick is not None:
            record["tick"] = self.tick
        if self.label is not None:
            record["label"] = self.label
        if self.data is not None:
            record["data"] = self.data
        return record

    @classmethod
    def from_json(cls, record: dict) -> "SpanEvent":
        return cls(
            ts=record["ts"],
            kind=record["kind"],
            cell=record["cell"],
            attempt=record["attempt"],
            source=record["source"],
            shard=record.get("shard"),
            tick=record.get("tick"),
            label=record.get("label"),
            data=record.get("data"),
        )


def _order_key(event: SpanEvent) -> tuple:
    """Total order: timestamp, then cell, attempt, causal rank, tick.

    The tie-break chain makes the merged timeline a pure function of
    the event *set* — two workers flushing in either order, or a spool
    directory listing files differently, always merge identically.
    """
    return (
        event.ts,
        event.cell if event.cell is not None else -1,
        event.attempt,
        _KIND_ORDER.get(event.kind, len(_KIND_ORDER)),
        event.tick if event.tick is not None else -1,
        event.source,
    )


class SpanRecorder:
    """Supervisor-side span collector.

    One recorder accompanies one supervised dispatch; ``emit`` stamps
    the wall clock and appends.  ``clock`` is injectable so tests can
    script deterministic timestamps.
    """

    enabled = True

    def __init__(self, clock=time.time) -> None:
        self._clock = clock
        self.events: list[SpanEvent] = []

    def emit(
        self,
        kind: str,
        *,
        cell: Optional[int] = None,
        attempt: int = 1,
        shard: Optional[int] = None,
        tick: Optional[int] = None,
        label: Optional[str] = None,
        data: Optional[dict] = None,
    ) -> SpanEvent:
        event = SpanEvent(
            ts=self._clock(),
            kind=kind,
            cell=cell,
            attempt=attempt,
            source=SOURCE_SUPERVISOR,
            shard=shard,
            tick=tick,
            label=label,
            data=data,
        )
        self.events.append(event)
        return event


def spans_or_none(spans) -> Optional[SpanRecorder]:
    """Collapse ``None`` / disabled recorders to ``None`` (entry guard)."""
    if spans is None or not getattr(spans, "enabled", False):
        return None
    return spans


# ----------------------------------------------------------------------
# merge / persistence
# ----------------------------------------------------------------------

def merge_timeline(*event_groups: Iterable[SpanEvent]) -> list[SpanEvent]:
    """One globally-ordered timeline from any number of event streams.

    Typically called with the supervisor recorder's events plus the
    events read back from every worker spool.  Ordering is total (see
    :func:`_order_key`), so the result is deterministic regardless of
    how the inputs interleaved.
    """
    merged: list[SpanEvent] = []
    for group in event_groups:
        merged.extend(group)
    merged.sort(key=_order_key)
    return merged


def save_spans(events: Iterable[SpanEvent], path) -> Path:
    """Write span events as JSONL; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        for event in events:
            handle.write(json.dumps(event.to_json(), default=str))
            handle.write("\n")
    return path


def iter_spans(path, *, strict: bool = True) -> Iterator[SpanEvent]:
    """Stream span events back from a JSONL file.

    ``strict=False`` skips undecodable lines instead of raising — the
    spool reader uses it because a killed worker can leave a truncated
    final line behind (everything before it was fsynced and is intact).
    """
    with Path(path).open() as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                if strict:
                    raise ValueError(
                        f"{path}:{line_number}: not a JSONL span line ({error})"
                    ) from error
                continue
            yield SpanEvent.from_json(record)


def load_spans(path, *, strict: bool = True) -> list[SpanEvent]:
    """Read a whole JSONL span file into memory."""
    return list(iter_spans(path, strict=strict))


# ----------------------------------------------------------------------
# stage latencies
# ----------------------------------------------------------------------

#: The derived stages a timeline decomposes into.
STAGES = ("queue", "run", "checkpoint_save", "retry_backoff")


def stage_durations(events: Iterable[SpanEvent]) -> dict:
    """Per-stage duration samples (seconds) of one timeline.

    * ``queue`` — ``submit`` → ``start`` per attempt (dispatch +
      pool-queue wait);
    * ``run`` — ``start`` → ``finish``/``fail``/``timeout`` per
      attempt;
    * ``checkpoint_save`` — the save cost each ``checkpoint_save``
      event carries in ``data["seconds"]``;
    * ``retry_backoff`` — ``retry`` → the next attempt's ``start``.

    Cross-process clock skew can make a tiny span negative; durations
    are clamped at zero.
    """
    submits: dict = {}
    starts: dict = {}
    retries: dict = {}
    durations: dict = {stage: [] for stage in STAGES}
    for event in events:
        key = (event.cell, event.attempt)
        if event.kind == SPAN_SUBMIT:
            submits[key] = event.ts
        elif event.kind == SPAN_START:
            starts[key] = event.ts
            if key in submits:
                durations["queue"].append(max(0.0, event.ts - submits[key]))
            scheduled = retries.pop(key, None)
            if scheduled is not None:
                durations["retry_backoff"].append(
                    max(0.0, event.ts - scheduled)
                )
        elif event.kind in TERMINAL_KINDS:
            if key in starts:
                durations["run"].append(max(0.0, event.ts - starts[key]))
        elif event.kind == SPAN_CHECKPOINT_SAVE:
            seconds = (event.data or {}).get("seconds")
            if seconds is not None:
                durations["checkpoint_save"].append(float(seconds))
        elif event.kind == SPAN_RETRY:
            next_attempt = (event.data or {}).get(
                "next_attempt", event.attempt + 1
            )
            retries[(event.cell, next_attempt)] = event.ts
    return durations


def stage_stats(
    events: Iterable[SpanEvent],
    *,
    quantiles: tuple = (0.5, 0.9, 0.99),
    epsilon: float = 0.01,
) -> dict:
    """Latency summary per stage: count/mean/min/max plus GK quantiles.

    Quantiles come from the :class:`~repro.stats.quantiles.GKQuantileSummary`
    sketch — the same machinery the paper's statistics module maintains
    over streams — so the summary stays sublinear even on timelines
    with millions of heartbeats.
    """
    stats: dict = {}
    for stage, samples in stage_durations(events).items():
        if not samples:
            stats[stage] = {"count": 0}
            continue
        sketch = GKQuantileSummary(epsilon)
        for sample in samples:
            sketch.observe(sample)
        stats[stage] = {
            "count": len(samples),
            "mean": sum(samples) / len(samples),
            "min": min(samples),
            "max": max(samples),
            **{f"p{int(q * 100)}": sketch.query(q) for q in quantiles},
        }
    return stats


def span_summary(events: Iterable[SpanEvent]) -> dict:
    """Aggregate view of a timeline: kind counts, cells, attempts, span."""
    kinds: dict = {}
    cells: set = set()
    max_attempt: dict = {}
    first = last = None
    total = 0
    for event in events:
        total += 1
        kinds[event.kind] = kinds.get(event.kind, 0) + 1
        if event.cell is not None:
            cells.add(event.cell)
            if event.attempt > max_attempt.get(event.cell, 0):
                max_attempt[event.cell] = event.attempt
        if first is None or event.ts < first:
            first = event.ts
        if last is None or event.ts > last:
            last = event.ts
    return {
        "events": total,
        "kinds": kinds,
        "cells": sorted(cells),
        "retries": sum(attempt - 1 for attempt in max_attempt.values()),
        "wall_seconds": (last - first) if total else 0.0,
    }


# ----------------------------------------------------------------------
# Chrome trace-event / Perfetto export
# ----------------------------------------------------------------------

def _us(ts: float, origin: float) -> float:
    """Microseconds since the timeline origin (trace-event time unit)."""
    return round((ts - origin) * 1e6, 3)


def to_chrome_trace(events: Iterable[SpanEvent], *, pid: int = 1) -> dict:
    """The timeline as a Chrome trace-event JSON object.

    The result loads in ``chrome://tracing`` and Perfetto: one thread
    lane per cell (tid ``cell + 1``; run-level events on tid 0),
    complete (``"X"``) slices for queue and run spans and checkpoint
    saves, instant (``"i"``) marks for faults, retries, timeouts, and
    restores, and counter (``"C"``) tracks fed by the heartbeats
    (occupancy and tuples/s per cell).  Metadata (``"M"``) events name
    the process and thread lanes.
    """
    timeline = merge_timeline(events)
    trace_events: list[dict] = []
    if not timeline:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    origin = timeline[0].ts

    def tid_of(event: SpanEvent) -> int:
        return 0 if event.cell is None else event.cell + 1

    trace_events.append(
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": "repro run"},
        }
    )
    named_tids: set = {0}
    trace_events.append(
        {
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": "supervisor"},
        }
    )

    submits: dict = {}
    starts: dict = {}
    for event in timeline:
        tid = tid_of(event)
        if tid not in named_tids:
            named_tids.add(tid)
            lane = (
                f"shard {event.shard}"
                if event.shard is not None
                else f"cell {event.cell}"
            )
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": lane},
                }
            )
        key = (event.cell, event.attempt)
        args = {"attempt": event.attempt}
        if event.label:
            args["label"] = event.label
        if event.data:
            args.update(event.data)
        if event.tick is not None:
            args["tick"] = event.tick

        if event.kind == SPAN_SUBMIT:
            submits[key] = event.ts
        elif event.kind == SPAN_START:
            starts[key] = event.ts
            if key in submits:
                trace_events.append(
                    {
                        "name": "queued",
                        "cat": "queue",
                        "ph": "X",
                        "ts": _us(submits[key], origin),
                        "dur": max(0.001, _us(event.ts, origin)
                                   - _us(submits[key], origin)),
                        "pid": pid,
                        "tid": tid,
                        "args": args,
                    }
                )
        elif event.kind in TERMINAL_KINDS:
            begin = starts.get(key, event.ts)
            trace_events.append(
                {
                    "name": f"attempt {event.attempt}"
                            + ("" if event.kind == SPAN_FINISH
                               else f" ({event.kind})"),
                    "cat": "attempt",
                    "ph": "X",
                    "ts": _us(begin, origin),
                    "dur": max(0.001, _us(event.ts, origin)
                               - _us(begin, origin)),
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
        elif event.kind == SPAN_CHECKPOINT_SAVE:
            seconds = float((event.data or {}).get("seconds", 0.0))
            trace_events.append(
                {
                    "name": "checkpoint_save",
                    "cat": "checkpoint",
                    "ph": "X",
                    "ts": _us(event.ts - seconds, origin),
                    "dur": max(0.001, seconds * 1e6),
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
        elif event.kind == SPAN_HEARTBEAT:
            data = event.data or {}
            for counter in ("occupancy", "tuples_per_s"):
                if counter in data:
                    trace_events.append(
                        {
                            "name": f"cell{event.cell}/{counter}",
                            "ph": "C",
                            "ts": _us(event.ts, origin),
                            "pid": pid,
                            "tid": tid,
                            "args": {counter: data[counter]},
                        }
                    )
        else:  # fault / retry / restore / merge / degrade — instants
            trace_events.append(
                {
                    "name": event.kind,
                    "cat": "runtime",
                    "ph": "i",
                    "ts": _us(event.ts, origin),
                    "pid": pid,
                    "tid": tid,
                    "s": "t",
                    "args": args,
                }
            )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


# ----------------------------------------------------------------------
# fleet view
# ----------------------------------------------------------------------

#: Row statuses, in increasing badness.
FLEET_STATUSES = ("queued", "running", "retrying", "done", "lost")


def fleet_rows(
    events: Iterable[SpanEvent], *, upto_ts: Optional[float] = None
) -> list[dict]:
    """Fold a timeline into one state row per cell/shard.

    Each row carries the cell and shard indices, attempt count, current
    status (``queued``/``running``/``retrying``/``done``/``lost``), the
    last heartbeat's counters, and the heartbeat age at ``upto_ts``
    (default: the newest event's timestamp) — the straggler signal a
    fleet operator scans for.  Run-level events (``cell=None``) are
    ignored except ``degrade``, which marks its shard lost.
    """
    rows: dict[int, dict] = {}
    horizon = None
    for event in merge_timeline(events):
        if upto_ts is not None and event.ts > upto_ts:
            break
        horizon = event.ts if horizon is None else max(horizon, event.ts)
        if event.cell is None:
            if event.kind == SPAN_DEGRADE:
                for shard in (event.data or {}).get("lost", ()):
                    if shard in rows:
                        rows[shard]["status"] = "lost"
            continue
        row = rows.get(event.cell)
        if row is None:
            row = rows[event.cell] = {
                "cell": event.cell,
                "shard": event.shard if event.shard is not None else event.cell,
                "label": event.label,
                "attempts": 0,
                "status": "queued",
                "heartbeat": None,
                "heartbeat_ts": None,
                "retries": 0,
                "faults": 0,
                "checkpoints": 0,
                "restored": False,
            }
        if event.shard is not None:
            row["shard"] = event.shard
        if event.label and not row["label"]:
            row["label"] = event.label
        row["attempts"] = max(row["attempts"], event.attempt)
        if event.kind == SPAN_START:
            row["status"] = "running"
        elif event.kind == SPAN_HEARTBEAT:
            row["heartbeat"] = dict(event.data or {})
            row["heartbeat_ts"] = event.ts
        elif event.kind in (SPAN_FAIL, SPAN_TIMEOUT):
            row["status"] = "lost"
        elif event.kind == SPAN_RETRY:
            row["status"] = "retrying"
            row["retries"] += 1
        elif event.kind == SPAN_FINISH:
            row["status"] = "done"
        elif event.kind == SPAN_FAULT:
            row["faults"] += 1
        elif event.kind == SPAN_CHECKPOINT_SAVE:
            row["checkpoints"] += 1
        elif event.kind == SPAN_CHECKPOINT_RESTORE:
            row["restored"] = True
        elif event.kind == SPAN_DEGRADE:
            row["status"] = "lost"
    now = upto_ts if upto_ts is not None else horizon
    for row in rows.values():
        row["heartbeat_age"] = (
            max(0.0, now - row["heartbeat_ts"])
            if row["heartbeat_ts"] is not None and now is not None
            else None
        )
    return [rows[cell] for cell in sorted(rows)]
