"""Serialise metric snapshots: JSON (round-trip), flat CSV, plain text.

The canonical machine-readable form is the registry snapshot dict (see
:meth:`repro.obs.registry.MetricsRegistry.snapshot`); JSON export/import
round-trips it exactly.  The CSV form flattens every instrument into
``kind,name,labels,x,value`` rows — one row per counter/gauge, one per
histogram summary field, one per series point, one per phase — for
spreadsheet-style consumption.
"""

from __future__ import annotations

import csv
import json
import io
from pathlib import Path

from .registry import MetricsRegistry


def _as_snapshot(metrics) -> dict:
    """Accept a registry, a recorder, or an already-built snapshot."""
    if isinstance(metrics, dict):
        return metrics
    return metrics.snapshot()


def _format_labels(labels: dict) -> str:
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items()))


def metrics_to_json(metrics, *, indent: int = 2) -> str:
    """Render a registry (or snapshot) as a JSON document."""
    return json.dumps(_as_snapshot(metrics), indent=indent, sort_keys=False)


def save_metrics_json(metrics, path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(metrics_to_json(metrics) + "\n")
    return path


def load_metrics_json(path) -> MetricsRegistry:
    """Rebuild a registry from a JSON export (snapshot round-trip).

    Raises a :class:`ValueError` naming the file when it is not JSON —
    most commonly when handed a CSV written by :func:`save_metrics_csv`.
    """
    path = Path(path)
    text = path.read_text()
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        hint = ""
        if text[:64].lstrip().startswith(("kind,", "policy,")):
            hint = " (this looks like a CSV export; load_metrics_json reads JSON only)"
        raise ValueError(
            f"{path} is not a JSON metrics export{hint}: {error}"
        ) from error
    if not isinstance(data, dict):
        raise ValueError(
            f"{path} does not contain a metrics snapshot object "
            f"(got {type(data).__name__})"
        )
    return MetricsRegistry.from_snapshot(data)


def _csv_rows(snapshot: dict):
    """Flatten one snapshot into ``(kind, name, labels, x, value)`` rows."""
    for entry in snapshot.get("counters", ()):
        yield ["counter", entry["name"], _format_labels(entry["labels"]), "", entry["value"]]
    for entry in snapshot.get("gauges", ()):
        yield ["gauge", entry["name"], _format_labels(entry["labels"]), "", entry["value"]]
    for entry in snapshot.get("histograms", ()):
        labels = _format_labels(entry["labels"])
        for field in ("count", "sum", "min", "max"):
            yield ["histogram", entry["name"], labels, field, entry[field]]
    for entry in snapshot.get("series", ()):
        labels = _format_labels(entry["labels"])
        for point in entry["points"]:
            x, *values = point
            value = values[0] if len(values) == 1 else values
            yield ["series", entry["name"], labels, x, value]
    for entry in snapshot.get("phases", ()):
        yield ["phase", entry["path"], "", entry["count"], entry["seconds"]]


def metrics_to_csv(metrics) -> str:
    """Flatten a registry (or snapshot) into CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["kind", "name", "labels", "x", "value"])
    for row in _csv_rows(_as_snapshot(metrics)):
        writer.writerow(row)
    return buffer.getvalue()


def metrics_to_csv_multi(snapshots: dict) -> str:
    """Flatten several labelled snapshots into one CSV.

    ``snapshots`` maps a label (e.g. the policy name of a ``repro
    compare`` run) to a registry or snapshot dict.  Every row leads
    with a ``policy`` column so the merged file stays unambiguous.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["policy", "kind", "name", "labels", "x", "value"])
    for label, metrics in snapshots.items():
        for row in _csv_rows(_as_snapshot(metrics)):
            writer.writerow([label, *row])
    return buffer.getvalue()


def save_metrics_csv(metrics, path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(metrics_to_csv(metrics))
    return path


def format_metrics(metrics) -> str:
    """Human-readable summary of a registry (or snapshot)."""
    snapshot = _as_snapshot(metrics)
    lines = []

    def label_suffix(entry):
        rendered = _format_labels(entry["labels"])
        return f"{{{rendered}}}" if rendered else ""

    counters = snapshot.get("counters", ())
    if counters:
        lines.append("counters:")
        for entry in counters:
            lines.append(f"  {entry['name']}{label_suffix(entry)} = {entry['value']}")
    gauges = snapshot.get("gauges", ())
    if gauges:
        lines.append("gauges:")
        for entry in gauges:
            lines.append(f"  {entry['name']}{label_suffix(entry)} = {entry['value']:g}")
    histograms = snapshot.get("histograms", ())
    if histograms:
        lines.append("histograms:")
        for entry in histograms:
            mean = entry["sum"] / entry["count"] if entry["count"] else 0.0
            lines.append(
                f"  {entry['name']}{label_suffix(entry)}: n={entry['count']} "
                f"mean={mean:.4g} min={entry['min']} max={entry['max']}"
            )
    series = snapshot.get("series", ())
    if series:
        lines.append("series:")
        for entry in series:
            points = entry["points"]
            span = f"t={points[0][0]}..{points[-1][0]}" if points else "empty"
            lines.append(
                f"  {entry['name']}{label_suffix(entry)}: {len(points)} points ({span})"
            )
    phases = snapshot.get("phases", ())
    if phases:
        lines.append("phases:")
        for entry in phases:
            lines.append(
                f"  {entry['path']}: {entry['seconds'] * 1000:.3f} ms "
                f"over {entry['count']} section(s)"
            )
    return "\n".join(lines) if lines else "(no metrics recorded)"
