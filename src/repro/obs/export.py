"""Serialise metric snapshots: JSON (round-trip), flat CSV, plain text.

The canonical machine-readable form is the registry snapshot dict (see
:meth:`repro.obs.registry.MetricsRegistry.snapshot`); JSON export/import
round-trips it exactly.  The CSV form flattens every instrument into
``kind,name,labels,x,value`` rows — one row per counter/gauge, one per
histogram summary field, one per series point, one per phase — for
spreadsheet-style consumption.
"""

from __future__ import annotations

import csv
import json
import io
from pathlib import Path

from .registry import MetricsRegistry


def _as_snapshot(metrics) -> dict:
    """Accept a registry, a recorder, or an already-built snapshot."""
    if isinstance(metrics, dict):
        return metrics
    return metrics.snapshot()


def _format_labels(labels: dict) -> str:
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items()))


def metrics_to_json(metrics, *, indent: int = 2) -> str:
    """Render a registry (or snapshot) as a JSON document."""
    return json.dumps(_as_snapshot(metrics), indent=indent, sort_keys=False)


def save_metrics_json(metrics, path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(metrics_to_json(metrics) + "\n")
    return path


def load_metrics_json(path) -> MetricsRegistry:
    """Rebuild a registry from a JSON export (snapshot round-trip)."""
    return MetricsRegistry.from_snapshot(json.loads(Path(path).read_text()))


def metrics_to_csv(metrics) -> str:
    """Flatten a registry (or snapshot) into CSV text."""
    snapshot = _as_snapshot(metrics)
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["kind", "name", "labels", "x", "value"])
    for entry in snapshot.get("counters", ()):
        writer.writerow(
            ["counter", entry["name"], _format_labels(entry["labels"]), "", entry["value"]]
        )
    for entry in snapshot.get("gauges", ()):
        writer.writerow(
            ["gauge", entry["name"], _format_labels(entry["labels"]), "", entry["value"]]
        )
    for entry in snapshot.get("histograms", ()):
        labels = _format_labels(entry["labels"])
        for field in ("count", "sum", "min", "max"):
            writer.writerow(["histogram", entry["name"], labels, field, entry[field]])
    for entry in snapshot.get("series", ()):
        labels = _format_labels(entry["labels"])
        for point in entry["points"]:
            x, *values = point
            value = values[0] if len(values) == 1 else values
            writer.writerow(["series", entry["name"], labels, x, value])
    for entry in snapshot.get("phases", ()):
        writer.writerow(["phase", entry["path"], "", entry["count"], entry["seconds"]])
    return buffer.getvalue()


def save_metrics_csv(metrics, path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(metrics_to_csv(metrics))
    return path


def format_metrics(metrics) -> str:
    """Human-readable summary of a registry (or snapshot)."""
    snapshot = _as_snapshot(metrics)
    lines = []

    def label_suffix(entry):
        rendered = _format_labels(entry["labels"])
        return f"{{{rendered}}}" if rendered else ""

    counters = snapshot.get("counters", ())
    if counters:
        lines.append("counters:")
        for entry in counters:
            lines.append(f"  {entry['name']}{label_suffix(entry)} = {entry['value']}")
    gauges = snapshot.get("gauges", ())
    if gauges:
        lines.append("gauges:")
        for entry in gauges:
            lines.append(f"  {entry['name']}{label_suffix(entry)} = {entry['value']:g}")
    histograms = snapshot.get("histograms", ())
    if histograms:
        lines.append("histograms:")
        for entry in histograms:
            mean = entry["sum"] / entry["count"] if entry["count"] else 0.0
            lines.append(
                f"  {entry['name']}{label_suffix(entry)}: n={entry['count']} "
                f"mean={mean:.4g} min={entry['min']} max={entry['max']}"
            )
    series = snapshot.get("series", ())
    if series:
        lines.append("series:")
        for entry in series:
            points = entry["points"]
            span = f"t={points[0][0]}..{points[-1][0]}" if points else "empty"
            lines.append(
                f"  {entry['name']}{label_suffix(entry)}: {len(points)} points ({span})"
            )
    phases = snapshot.get("phases", ())
    if phases:
        lines.append("phases:")
        for entry in phases:
            lines.append(
                f"  {entry['path']}: {entry['seconds'] * 1000:.3f} ms "
                f"over {entry['count']} section(s)"
            )
    return "\n".join(lines) if lines else "(no metrics recorded)"
