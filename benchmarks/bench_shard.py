"""Write BENCH_shard.json: sharded-execution wall-clock + identity check.

Runs the same EXACT workload three ways — unsharded on the fast-CPU
engine, sharded (``--shards N``) serially, and sharded fanned over
``--workers`` processes — and records all three wall-clocks plus the
part that gates: whether the sharded runs reproduced the unsharded
result **exactly** (output count, total output, and the per-side drop
ledger — the partition layer's EXACT guarantee is identity, not
approximation).  A PROB row exercises the approximation variant: its
sharded output legitimately differs from unsharded, so only serial ==
parallel determinism is checked there.

Speedup is advisory: per-shard runs pay the async engine's per-tick
batch overhead plus fork/pickle tax, so small workloads or few-core
machines can legitimately be slower sharded.  The gate in
``benchmarks/regression.py`` trips only on identity/determinism drift
or a pathological (> ``--max-slowdown``x) sharded slowdown.

Run:  python benchmarks/bench_shard.py [--scale ci] [--shards 4]
                                       [--workers 2] [--out BENCH_shard.json]
Or:   make bench-shard
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without `make install`
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import RunSpec, build_pair, run_join
from repro.experiments.config import DEFAULT_DOMAIN, SCALES, even_memory

SEED = 0


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def build_shard_snapshot(scale_name: str, shards: int, workers: int) -> dict:
    scale = SCALES[scale_name]
    length = max(scale.stream_length, 2000)
    window = max(scale.window, 100)
    memory = even_memory(window, 0.5)

    base_spec = RunSpec(
        algorithm="EXACT", window=window, memory=memory,
        length=length, domain=DEFAULT_DOMAIN, seed=SEED,
    )
    pair = build_pair(base_spec)
    sharded_spec = RunSpec(
        algorithm="EXACT", window=window, memory=memory,
        length=length, domain=DEFAULT_DOMAIN, seed=SEED, shards=shards,
    )

    unsharded, unsharded_seconds = _timed(
        lambda: run_join(base_spec, pair=pair)
    )
    serial, serial_seconds = _timed(
        lambda: run_join(sharded_spec, pair=pair, workers=1)
    )
    parallel, parallel_seconds = _timed(
        lambda: run_join(sharded_spec, pair=pair, workers=workers)
    )

    mismatches = []
    for label, result in (("serial", serial), ("parallel", parallel)):
        if result.output_count != unsharded.output_count:
            mismatches.append(
                f"EXACT {label} shards={shards}: output "
                f"{result.output_count} != unsharded {unsharded.output_count}"
            )
        if result.total_output_count != unsharded.total_output_count:
            mismatches.append(
                f"EXACT {label} shards={shards}: total output "
                f"{result.total_output_count} != unsharded "
                f"{unsharded.total_output_count}"
            )
        if result.drop_breakdown() != unsharded.drop_breakdown():
            mismatches.append(
                f"EXACT {label} shards={shards}: drop ledger "
                f"{result.drop_breakdown()} != unsharded "
                f"{unsharded.drop_breakdown()}"
            )

    # The approximation variant: sharded PROB differs from unsharded by
    # design, but serial and parallel shard execution must agree bitwise.
    prob_spec = RunSpec(
        algorithm="PROB", window=window, memory=memory,
        length=length, domain=DEFAULT_DOMAIN, seed=SEED, shards=shards,
    )
    prob_serial = run_join(prob_spec, pair=pair, workers=1)
    prob_parallel = run_join(prob_spec, pair=pair, workers=workers)
    if prob_serial.output_count != prob_parallel.output_count:
        mismatches.append(
            f"PROB shards={shards}: serial {prob_serial.output_count} "
            f"!= parallel {prob_parallel.output_count}"
        )
    if prob_serial.drop_counts != prob_parallel.drop_counts:
        mismatches.append(
            f"PROB shards={shards}: serial and parallel drop ledgers differ"
        )

    return {
        "benchmark": "shard_execution",
        "scale": scale_name,
        "workload": {
            "generator": "zipf",
            "length": length,
            "domain": DEFAULT_DOMAIN,
            "skew": 1.0,
            "seed": SEED,
        },
        "parameters": {
            "window": window,
            "memory": memory,
            "shards": shards,
            "workers": workers,
            "cpu_count": os.cpu_count(),
        },
        "python": sys.version.split()[0],
        "unsharded_seconds": round(unsharded_seconds, 4),
        "serial_seconds": round(serial_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        "speedup_vs_unsharded": round(unsharded_seconds / parallel_seconds, 3),
        "exact_identical": not mismatches,
        "mismatches": mismatches,
        "counts": {
            "exact_output": unsharded.output_count,
            "exact_total_output": unsharded.total_output_count,
            "prob_sharded_output": prob_serial.output_count,
        },
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="ci", choices=sorted(SCALES))
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_shard.json"),
        help="where to write the snapshot",
    )
    args = parser.parse_args()

    snapshot = build_shard_snapshot(args.scale, args.shards, args.workers)
    path = Path(args.out)
    path.write_text(json.dumps(snapshot, indent=2) + "\n")

    print(f"shard execution @ scale={args.scale} "
          f"(shards={args.shards}, workers={args.workers}, "
          f"cpus={os.cpu_count()})")
    print(f"  unsharded {snapshot['unsharded_seconds']:>8.3f}s")
    print(f"  sharded   {snapshot['serial_seconds']:>8.3f}s serial, "
          f"{snapshot['parallel_seconds']:.3f}s parallel "
          f"({snapshot['speedup_vs_unsharded']:.2f}x vs unsharded)")
    if snapshot["exact_identical"]:
        print("  identity: sharded EXACT == unsharded EXACT "
              "(output, total, drop ledger)")
    else:
        print(f"  IDENTITY VIOLATION ({len(snapshot['mismatches'])} issue(s)):")
        for line in snapshot["mismatches"]:
            print(f"    - {line}")
    print(f"written to {path}")
    return 0 if snapshot["exact_identical"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
