"""Write BENCH_batch.json: columnar-batch throughput + identity check.

Runs the EXACT workload of ``BENCH_engine.json`` (``ci`` scale: n=2000,
w=100) two ways on the fast-CPU engine — per-tuple and through the
columnar micro-batch lane (``batch_size`` set) — with the timings
interleaved per round (see ``snapshot._interleaved_best``), and records:

* the per-tuple and batched throughputs plus their ratio (``speedup``),
  the number the regression gate holds to the ``>= 1.5x`` floor the
  batched lane exists to clear;
* the part that gates strictly: whether every batched run reproduced
  the per-tuple result **bit-identically** — output count, total
  output, drop ledger, survival departures, and metrics totals for
  EXACT across batch sizes; output/ledger for each shedding policy
  (RAND/PROB/LIFE take the vectorized lanes of
  ``repro.core.batched_policies`` — gated separately by
  ``bench_policy_batch.py`` — while ARM still falls back to per-tuple,
  and either route must be invisible); sharded EXACT with
  ``batch_size`` set.

The committed ``BENCH_batch.json`` at the repository root is the
reference point; ``make bench-gate`` rebuilds the snapshot and fails on
identity drift, deterministic-count drift, or a speedup below the
floor.

Run:  python benchmarks/bench_batch.py [--scale ci] [--repeats 7]
                                       [--out BENCH_batch.json]
Or:   make bench-batch
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without `make install`
    sys.path.insert(0, str(REPO_ROOT / "src"))

from snapshot import _interleaved_best  # noqa: E402 - sibling module

from repro.api import RunSpec, build_pair, run  # noqa: E402
from repro.experiments.config import DEFAULT_DOMAIN, SCALES, even_memory  # noqa: E402
from repro.streams.batches import DEFAULT_BATCH_SIZE, HAVE_NUMPY  # noqa: E402

SEED = 0
#: Batched EXACT must beat per-tuple EXACT by at least this factor.
MIN_SPEEDUP = 1.5
#: Chunk sizes the identity sweep crosses (plus the whole stream).
IDENTITY_BATCH_SIZES = (1, 7, 64, DEFAULT_BATCH_SIZE)
#: Shedding policies whose runs ``batch_size`` must not change: the
#: static-table ones take the vectorized policy lanes (timed and floor-
#: gated by ``bench_policy_batch.py``); ARM has no lane and falls back.
SHEDDING_POLICIES = ("RAND", "PROB", "PROBV", "LIFE", "ARM")


def _comparable_metrics(snapshot):
    """Metrics snapshot minus wall-clock phases (timing is not identity)."""
    if snapshot is None:
        return None
    return {k: v for k, v in snapshot.items() if k != "phases"}


def _check_identity(mismatches, label, batched, baseline, *, metrics=False):
    if batched.output_count != baseline.output_count:
        mismatches.append(
            f"{label}: output {batched.output_count} "
            f"!= per-tuple {baseline.output_count}"
        )
    if batched.total_output_count != baseline.total_output_count:
        mismatches.append(
            f"{label}: total output {batched.total_output_count} "
            f"!= per-tuple {baseline.total_output_count}"
        )
    if batched.drop_counts != baseline.drop_counts:
        mismatches.append(
            f"{label}: drop ledger {batched.drop_counts} "
            f"!= per-tuple {baseline.drop_counts}"
        )
    if metrics and _comparable_metrics(batched.metrics) != _comparable_metrics(
        baseline.metrics
    ):
        mismatches.append(f"{label}: metrics totals differ from per-tuple")


def build_batch_snapshot(scale_name: str, repeats: int, seed: int) -> dict:
    scale = SCALES[scale_name]
    length = max(scale.stream_length, 2000)
    window = max(scale.window, 100)
    memory = even_memory(window, 0.5)

    def spec(algorithm="EXACT", **overrides):
        return RunSpec(
            algorithm=algorithm, window=window, memory=memory,
            length=length, domain=DEFAULT_DOMAIN, seed=seed, **overrides,
        )

    pair = build_pair(spec())

    # -- throughput: per-tuple vs batched EXACT, interleaved ------------
    run(spec(), pair=pair)  # warm up allocator/caches outside timing
    run(spec(batch_size=DEFAULT_BATCH_SIZE), pair=pair)
    best, results = _interleaved_best(repeats, {
        "serial": lambda: run(spec(), pair=pair),
        "batched": lambda: run(
            spec(batch_size=DEFAULT_BATCH_SIZE), pair=pair
        ),
    })
    serial_seconds, batched_seconds = best["serial"], best["batched"]
    serial_ktps = length / serial_seconds / 1000
    batched_ktps = length / batched_seconds / 1000
    speedup = serial_seconds / batched_seconds

    mismatches: list[str] = []
    baseline = results["serial"]
    _check_identity(
        mismatches, f"EXACT batch={DEFAULT_BATCH_SIZE}",
        results["batched"], baseline,
    )
    if results["batched"].r_departures != baseline.r_departures or (
        results["batched"].s_departures != baseline.s_departures
    ):
        mismatches.append(
            f"EXACT batch={DEFAULT_BATCH_SIZE}: survival departures differ"
        )

    # -- identity sweep: EXACT across chunk sizes, with metrics --------
    exact_metrics = run(spec(metrics=True), pair=pair)
    for batch_size in IDENTITY_BATCH_SIZES:
        batched = run(spec(metrics=True, batch_size=batch_size), pair=pair)
        _check_identity(
            mismatches, f"EXACT batch={batch_size}",
            batched, exact_metrics, metrics=True,
        )

    # -- policy identity: every shedding policy, two chunk sizes -------
    for name in SHEDDING_POLICIES:
        policy_baseline = run(spec(name), pair=pair)
        for batch_size in (7, DEFAULT_BATCH_SIZE):
            batched = run(spec(name, batch_size=batch_size), pair=pair)
            _check_identity(
                mismatches, f"{name} batch={batch_size}",
                batched, policy_baseline,
            )

    # -- sharded identity: batch_size must be invisible under shards ---
    sharded_baseline = run(spec(shards=4), pair=pair)
    sharded_batched = run(spec(shards=4, batch_size=64), pair=pair)
    _check_identity(
        mismatches, "EXACT shards=4 batch=64",
        sharded_batched, sharded_baseline,
    )
    if sharded_baseline.output_count != baseline.output_count:
        mismatches.append(
            f"EXACT shards=4: output {sharded_baseline.output_count} "
            f"!= unsharded {baseline.output_count}"
        )

    return {
        "benchmark": "batch_throughput",
        "scale": scale_name,
        "workload": {
            "generator": "zipf",
            "length": length,
            "domain": DEFAULT_DOMAIN,
            "skew": 1.0,
            "seed": seed,
        },
        "parameters": {
            "window": window,
            "memory": memory,
            "repeats": repeats,
            "batch_size": DEFAULT_BATCH_SIZE,
            "min_speedup": MIN_SPEEDUP,
        },
        "python": sys.version.split()[0],
        "numpy": HAVE_NUMPY,
        "serial_ktuples_per_second": round(serial_ktps, 2),
        "batched_ktuples_per_second": round(batched_ktps, 2),
        "serial_seconds": round(serial_seconds, 4),
        "batched_seconds": round(batched_seconds, 4),
        "speedup": round(speedup, 2),
        "batched_identical": not mismatches,
        "mismatches": mismatches,
        "counts": {
            "exact_output": baseline.output_count,
            "exact_total_output": baseline.total_output_count,
        },
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="ci", choices=sorted(SCALES))
    parser.add_argument("--repeats", type=int, default=7)
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_batch.json"),
        help="where to write the snapshot",
    )
    args = parser.parse_args()

    snapshot = build_batch_snapshot(args.scale, args.repeats, args.seed)
    path = Path(args.out)
    path.write_text(json.dumps(snapshot, indent=2) + "\n")

    print(f"batched EXACT @ scale={args.scale} "
          f"(n={snapshot['workload']['length']}, "
          f"w={snapshot['parameters']['window']}, "
          f"batch={snapshot['parameters']['batch_size']})")
    print(f"  per-tuple {snapshot['serial_ktuples_per_second']:>8.2f} k-tuples/s")
    print(f"  batched   {snapshot['batched_ktuples_per_second']:>8.2f} k-tuples/s "
          f"({snapshot['speedup']:.2f}x)")
    print(f"  batched_identical={snapshot['batched_identical']}")
    for line in snapshot["mismatches"]:
        print(f"  MISMATCH: {line}")
    print(f"written to {path}")
    return 0 if snapshot["batched_identical"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
