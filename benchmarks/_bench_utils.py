"""Helpers shared by the benchmark modules."""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> Path:
    """Persist a rendered figure/table and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
    return path


def emit_figure(name: str, figure) -> Path:
    """Persist a figure as aligned text plus machine-readable CSV."""
    from repro.experiments import format_figure, save_figure_csv

    path = emit(name, format_figure(figure))
    save_figure_csv(figure, RESULTS_DIR / f"{name}.csv")
    return path


def emit_table(name: str, table) -> Path:
    """Persist a table as aligned text plus machine-readable CSV."""
    from repro.experiments import format_table, save_table_csv

    path = emit(name, format_table(table))
    save_table_csv(table, RESULTS_DIR / f"{name}.csv")
    return path


def run_once(benchmark, func, *args, **kwargs):
    """Benchmark a kernel with a small fixed round count.

    Figure generation itself can take tens of seconds at larger scales,
    so kernels are timed with three rounds of one iteration each rather
    than pytest-benchmark's adaptive calibration.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=3, iterations=1)
