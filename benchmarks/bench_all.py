"""Run every bench-* gate and print one consolidated comparison table.

Aggregate driver for the individual snapshot benchmarks (``make
bench-all``).  Each gate is executed exactly as its Makefile target
would run it, except that the snapshot is written to a temporary file —
the committed ``BENCH_*.json`` baselines at the repository root are
**never overwritten** — and the fresh numbers are printed next to the
committed ones in a single table: throughput (k-tuples/s), speedups,
overhead percentages, and the strict identity flags each gate carries.

This is a *reporting* front-end: a gate that exits non-zero (identity
mismatch, speedup floor, overhead budget) fails ``bench-all`` too, but
tolerance-band regression checking against the baselines remains
``make bench-gate`` (``benchmarks/regression.py``).  The soak benchmark
is excluded — it runs millions of ticks; use ``make soak``.

Run:  python benchmarks/bench_all.py [--scale ci]
Or:   make bench-all
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = Path(__file__).resolve().parent


def _engine_rows(snap):
    rows = [(f"{p['policy']} kt/s", p["ktuples_per_second"], "ktps")
            for p in snap["policies"]]
    rows.append(("metrics overhead % (max)",
                 max(p["metrics_overhead_pct"] for p in snap["policies"]), "pct"))
    rows.append(("trace overhead % (max)",
                 max(p["trace_overhead_pct"] for p in snap["policies"]), "pct"))
    return rows


def _runtime_rows(snap):
    return [
        ("serial s", snap["serial_seconds"], "sec"),
        ("parallel s", snap["parallel_seconds"], "sec"),
        ("parallel speedup", snap["speedup"], "x"),
        ("outputs identical", snap["outputs_match"], "ok"),
    ]


def _shard_rows(snap):
    return [
        ("unsharded s", snap["unsharded_seconds"], "sec"),
        ("sharded serial s", snap["serial_seconds"], "sec"),
        ("sharded parallel s", snap["parallel_seconds"], "sec"),
        ("EXACT identical", snap["exact_identical"], "ok"),
    ]


def _chaos_rows(snap):
    return [
        ("EXACT pooled s", snap["seconds"]["exact_pooled"], "sec"),
        ("PROB pooled s", snap["seconds"]["prob_pooled"], "sec"),
        ("recovery identical", snap["recovery_identical"], "ok"),
    ]


def _obs_rows(snap):
    return [
        ("telemetry overhead %", snap["overhead_pct"], "pct"),
        ("overhead within budget", snap["overhead_ok"], "ok"),
        ("telemetry identical", snap["telemetry_identical"], "ok"),
    ]


def _batch_rows(snap):
    return [
        ("EXACT per-tuple kt/s", snap["serial_ktuples_per_second"], "ktps"),
        ("EXACT batched kt/s", snap["batched_ktuples_per_second"], "ktps"),
        ("EXACT batched speedup", snap["speedup"], "x"),
        ("batched identical", snap["batched_identical"], "ok"),
    ]


def _policy_rows(snap):
    rows = []
    for p in snap["policies"]:
        rows.append((f"{p['policy']} per-tuple kt/s",
                     p["serial_ktuples_per_second"], "ktps"))
        rows.append((f"{p['policy']} batched kt/s",
                     p["batched_ktuples_per_second"], "ktps"))
        rows.append((f"{p['policy']} batched speedup", p["speedup"], "x"))
    rows.append(("batched identical", snap["batched_identical"], "ok"))
    return rows


#: (gate, script, committed baseline, extra argv, row extractor).
GATES = (
    ("bench-smoke", "snapshot.py", "BENCH_engine.json", (), _engine_rows),
    ("bench-parallel", "bench_runtime.py", "BENCH_runtime.json", (), _runtime_rows),
    ("bench-shard", "bench_shard.py", "BENCH_shard.json", (), _shard_rows),
    ("bench-chaos", "bench_chaos.py", "BENCH_chaos.json", (), _chaos_rows),
    ("bench-obs", "bench_telemetry.py", "BENCH_obs.json",
     ("--timeline-out",), _obs_rows),
    ("bench-batch", "bench_batch.py", "BENCH_batch.json", (), _batch_rows),
    ("bench-policy", "bench_policy_batch.py", "BENCH_policy.json", (),
     _policy_rows),
)


def _fmt(value, kind):
    if value is None:
        return "-"
    if kind == "ok":
        return "ok" if value else "FAIL"
    if kind == "pct":
        return f"{value:+.1f}%"
    if kind == "x":
        return f"{value:.2f}x"
    return f"{value:.2f}"


def _delta(kind, baseline, current):
    """One comparison cell: speed ratio, pct-point delta, or flag match."""
    if baseline is None or current is None:
        return "-"
    if kind == "ok":
        return "=" if baseline == current else "CHANGED"
    if kind == "pct":
        return f"{current - baseline:+.1f}pp"
    # Throughput-style ratio, oriented so >1.00x always means "faster".
    if kind == "sec":
        return f"{baseline / current:.2f}x" if current else "-"
    return f"{current / baseline:.2f}x" if baseline else "-"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="ci")
    args = parser.parse_args()

    failures: list[str] = []
    table: list[tuple[str, str, str, str, str]] = []

    with tempfile.TemporaryDirectory(prefix="bench-all-") as tmp:
        for gate, script, baseline_name, extra, extract in GATES:
            out = Path(tmp) / baseline_name
            argv = [sys.executable, str(BENCH_DIR / script),
                    "--scale", args.scale, "--out", str(out)]
            for flag in extra:  # side artifacts also go to the temp dir
                argv += [flag, str(Path(tmp) / f"{gate}-artifact.json")]
            print(f"=== {gate}: {script}", flush=True)
            proc = subprocess.run(argv, cwd=REPO_ROOT)
            if proc.returncode != 0:
                failures.append(f"{gate} exited {proc.returncode}")
            if not out.exists():
                failures.append(f"{gate} wrote no snapshot")
                continue
            fresh = json.loads(out.read_text())
            baseline_path = REPO_ROOT / baseline_name
            baseline = (json.loads(baseline_path.read_text())
                        if baseline_path.exists() else None)
            base_rows = dict(
                (label, (value, kind))
                for label, value, kind in (extract(baseline) if baseline else ())
            )
            for label, value, kind in extract(fresh):
                base_value = base_rows.get(label, (None, kind))[0]
                table.append((
                    gate, label,
                    _fmt(base_value, kind), _fmt(value, kind),
                    _delta(kind, base_value, value),
                ))
                if kind == "ok" and not value:
                    failures.append(f"{gate}: {label} is false")

    print()
    headers = ("gate", "metric", "baseline", "current", "vs baseline")
    widths = [max(len(headers[i]), *(len(row[i]) for row in table))
              for i in range(5)]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("  ".join("-" * w for w in widths))
    for row in table:
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))

    print()
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("all gates passed (baselines untouched; "
          "run `make bench-gate` for tolerance-band regression checks)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
