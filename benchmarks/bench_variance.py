"""Seed-stability benchmark: the headline conclusions across seeds.

Repeats the Figure 3 configuration over several seeds and checks that
the paper's ordering (OPT > PROB > LIFE > FIFO ~ RAND) holds with margin
on every seed, not just on average.
"""

import pytest

from _bench_utils import emit_figure, emit_table, run_once
from repro.experiments import format_table, run_algorithm
from repro.experiments.config import DEFAULT_DOMAIN, even_memory
from repro.experiments.sweep import variance_study
from repro.streams import zipf_pair


@pytest.fixture(scope="module")
def table(scale):
    data = variance_study(scale)
    emit_table("variance_study", data)
    return data


def test_variance(benchmark, table, scale):
    window = scale.window
    pair = zipf_pair(scale.stream_length, DEFAULT_DOMAIN, 1.0, seed=0)
    run_once(benchmark, run_algorithm, "PROB", pair, window, even_memory(window, 0.5))

    means = {row[0]: row[1] for row in table.rows[:-1]}
    stds = {row[0]: row[2] for row in table.rows[:-1]}

    # Ordering of the fraction-of-EXACT means with clear separation.
    assert means["OPT"] > means["PROB"] + stds["PROB"]
    assert means["PROB"] > means["RAND"] + 2 * stds["RAND"]
    assert abs(means["FIFO"] - means["RAND"]) < 0.35 * means["RAND"]

    # PROB beat RAND on every single seed.
    dominance = table.rows[-1]
    assert dominance[1] == len(table.params["seeds"])