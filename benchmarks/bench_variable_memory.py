"""Section 4.3 (prose): fixed vs. variable memory allocation.

Reproduces the text-only result: PROBV/OPTV outperform their fixed
counterparts when the two streams' skews differ, with the more skewed
stream claiming the larger memory share.
"""

import pytest

from _bench_utils import emit_figure, emit_table, run_once
from repro.experiments import format_table, run_algorithm
from repro.experiments.config import DEFAULT_DOMAIN, even_memory
from repro.experiments.figures import variable_memory_study
from repro.streams import zipf_pair


@pytest.fixture(scope="module")
def table(scale):
    data = variable_memory_study(scale)
    emit_table("variable_memory", data)
    return data


def test_variable_memory(benchmark, table, scale):
    window = scale.window
    memory = even_memory(window, 0.5)
    pair = zipf_pair(scale.stream_length, DEFAULT_DOMAIN, 2.0, skew_s=0.5, seed=0)
    run_once(benchmark, run_algorithm, "PROBV", pair, window, memory)

    columns = table.columns
    opt_col = columns.index("OPT")
    optv_col = columns.index("OPTV")
    prob_col = columns.index("PROB")
    probv_col = columns.index("PROBV")
    share_col = columns.index("R mem share")

    for row in table.rows:
        # OPTV dominates OPT by construction (strictly more schedules).
        assert row[optv_col] >= row[opt_col]
        # PROBV matches or beats PROB up to small run-to-run noise, and
        # the gain stays within the paper's ~10% bound.
        assert row[probv_col] >= 0.95 * row[prob_col]
        assert row[probv_col] <= 1.15 * row[prob_col]

    # The more skewed stream receives a growing share of the memory.
    shares = table.column("R mem share")
    assert shares[-1] > shares[0]
    assert shares[-1] > 0.6


@pytest.fixture(scope="module")
def varying_table(scale):
    from repro.experiments.figures import varying_memory_study

    data = varying_memory_study(scale)
    emit_table("varying_memory", data)
    return data


def test_varying_memory(benchmark, varying_table, scale):
    """Section 3.3 claim: the policies adapt to a time-varying budget."""
    window = scale.window
    pair = zipf_pair(scale.stream_length, DEFAULT_DOMAIN, 1.0, seed=0)
    low = even_memory(window, 0.25)
    high = even_memory(window, 1.0)

    def kernel():
        from repro.core.engine import EngineConfig, JoinEngine
        from repro.experiments import estimators_for
        from repro.experiments.runner import _policy_for

        estimators = estimators_for(pair)
        config = EngineConfig(
            window=window,
            memory=high,
            memory_schedule=lambda t: high if (t // window) % 2 == 0 else low,
        )
        return JoinEngine(
            config, policy=_policy_for("PROB", estimators, window, 0)
        ).run(pair)

    run_once(benchmark, kernel)

    for row in varying_table.rows:
        _name, low_out, varying_out, _mean_out, high_out = row
        assert low_out <= varying_out <= high_out
    outputs = {row[0]: row[2] for row in varying_table.rows}
    assert outputs["PROB"] > outputs["RAND"]
