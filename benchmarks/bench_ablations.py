"""Ablation benchmarks: statistics module, predictor quality, drift, solver.

These probe the design choices DESIGN.md calls out beyond the paper's
own figures; see :mod:`repro.experiments.ablations`.
"""

import pytest

from _bench_utils import emit_figure, emit_table, run_once
from repro.experiments import format_table
from repro.experiments.ablations import (
    drift_ablation,
    predictor_quality_ablation,
    solver_ablation,
    statistics_ablation,
)


@pytest.fixture(scope="module")
def statistics_table(scale):
    data = statistics_ablation(scale)
    emit_table("ablation_statistics", data)
    return data


@pytest.fixture(scope="module")
def predictor_table(scale):
    data = predictor_quality_ablation(scale)
    emit_table("ablation_predictor", data)
    return data


@pytest.fixture(scope="module")
def drift_table(scale):
    data = drift_ablation(scale)
    emit_table("ablation_drift", data)
    return data


@pytest.fixture(scope="module")
def solver_table(scale):
    data = solver_ablation(scale)
    emit_table("ablation_solver", data)
    return data


def _prob_kernel(scale):
    """The representative kernel timed by the ablation benchmarks."""
    from repro.experiments import run_algorithm
    from repro.experiments.config import DEFAULT_DOMAIN, even_memory
    from repro.streams import zipf_pair

    pair = zipf_pair(scale.stream_length, DEFAULT_DOMAIN, 1.0, seed=0)
    window = scale.window
    return run_algorithm("PROB", pair, window, even_memory(window, 0.5))


def test_statistics_ablation(benchmark, statistics_table, scale):
    run_once(benchmark, _prob_kernel, scale)
    ratios = statistics_table.column("x RAND")
    assert all(ratio > 1.2 for ratio in ratios[:-1])
    outputs = statistics_table.column("PROB output")
    assert outputs[0] == max(outputs[:-1])  # exact table is best


def test_predictor_ablation(benchmark, predictor_table, scale):
    run_once(benchmark, _prob_kernel, scale)
    outputs = predictor_table.column("PROB output")
    assert outputs[0] > outputs[-2]  # corruption hurts
    assert outputs[-2] < 1.5 * outputs[-1]  # fully corrupted ~ RAND


def test_drift_ablation(benchmark, drift_table, scale):
    run_once(benchmark, _prob_kernel, scale)
    outputs = dict(
        zip(drift_table.column("statistics module"), drift_table.column("PROB output"))
    )
    assert outputs["EWMA (alpha=0.02)"] > outputs["static table (first phase)"]


def test_solver_ablation(benchmark, solver_table, scale):
    # The kernel benchmarked here is the SSP-based OPT used in production.
    from repro.core.offline import solve_opt
    from repro.experiments.config import DEFAULT_DOMAIN
    from repro.streams import zipf_pair

    pair = zipf_pair(450, DEFAULT_DOMAIN, 1.0, seed=0)
    run_once(benchmark, solve_opt, pair, 30, 30)
    outputs = solver_table.column("OPT output")
    assert outputs[0] == outputs[1]
