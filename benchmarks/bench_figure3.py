"""Figure 3: output vs. memory, Zipf(1.0) both streams, window w.

Regenerates the figure's five series (RAND, LIFE, PROB, OPT, EXACT) over
the paper's memory sweep and benchmarks the PROB engine kernel on the
same workload.
"""

import pytest

from _bench_utils import emit_figure, emit_table, run_once
from repro.experiments import format_figure, run_algorithm
from repro.experiments.config import DEFAULT_DOMAIN
from repro.experiments.figures import figure3
from repro.streams import zipf_pair


@pytest.fixture(scope="module")
def figure(scale):
    data = figure3(scale)
    emit_figure("figure3", data)
    return data


def test_figure3(benchmark, figure, scale):
    pair = zipf_pair(scale.stream_length, DEFAULT_DOMAIN, 1.0, seed=0)
    window = scale.window
    run_once(benchmark, run_algorithm, "PROB", pair, window, window)

    rand = figure.series_by_label("RAND").y
    life = figure.series_by_label("LIFE").y
    prob = figure.series_by_label("PROB").y
    opt = figure.series_by_label("OPT").y
    exact = figure.series_by_label("EXACT").y

    # Paper shape: PROB far above RAND, close to OPT; everything <= OPT <= EXACT.
    assert all(p > r for p, r in zip(prob, rand))
    assert all(p >= l for p, l in zip(prob, life))
    assert all(max(r, l, p) <= o for r, l, p, o in zip(rand, life, prob, opt))
    assert all(o <= e for o, e in zip(opt, exact))
    # RAND grows monotonically (roughly linearly) with memory.
    assert rand == sorted(rand)
    # PROB tracks OPT closely at M = w.
    index = figure.params["memories"].index(window)
    assert prob[index] / opt[index] > 0.8
