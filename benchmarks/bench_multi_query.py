"""Multi-query resource sharing (Section 6 future work).

Two sliding-window joins on different attributes share both input queues
under a service budget covering half the arrival rate; queue shedding
aggregates the queries' statistics ("max"/"sum") or ignores them
(tail/random).
"""

import pytest

from _bench_utils import emit_figure, emit_table, run_once
from repro.core.multiquery import QuerySpec, SharedQueueSystem
from repro.experiments import format_table
from repro.experiments.config import DEFAULT_DOMAIN, even_memory
from repro.experiments.figures import multi_query_study
from repro.streams import multi_attribute_pair


@pytest.fixture(scope="module")
def table(scale):
    data = multi_query_study(scale)
    emit_table("multi_query", data)
    return data


def test_multi_query(benchmark, table, scale):
    window = scale.window
    pair = multi_attribute_pair(
        scale.stream_length, [DEFAULT_DOMAIN, 20], [1.2, 0.8], seed=0
    )
    queries = [
        QuerySpec("skewed-join", attribute=0, window=window,
                  memory=even_memory(window, 0.5)),
        QuerySpec("mild-join", attribute=1, window=2 * window,
                  memory=even_memory(window, 1.0)),
    ]

    def kernel():
        system = SharedQueueSystem(
            pair,
            queries,
            service_per_tick=len(queries),
            queue_capacity=max(window // 4, 4),
            shed_rule="sum",
            warmup=2 * window,
        )
        return system.run()

    run_once(benchmark, kernel)

    totals = dict(zip(table.column("shed rule"), table.column("total")))
    assert totals["max"] > totals["random"]
    assert totals["sum"] > totals["random"]
    assert totals["max"] > totals["tail"]
    # Semantic sharing starves neither query.
    for row in table.rows:
        if row[0] in ("max", "sum"):
            assert row[1] > 0 and row[2] > 0
