"""Figures 9-11: effect of the join-attribute domain size (10 / 50 / 200).

The paper's point: growing the domain pulls OPT towards EXACT (EXACT/OPT
approaches 1) while separating PROB from OPT (more low-frequency values
to "make a mistake" on).
"""

import pytest

from _bench_utils import emit, run_once
from repro.experiments import format_figure
from repro.experiments.config import DOMAIN_SIZES
from repro.experiments.figures import figure_domain_size
from repro.core.offline import solve_opt
from repro.streams import zipf_pair

FIGURE_IDS = {10: "figure9", 50: "figure10", 200: "figure11"}


@pytest.fixture(scope="module")
def figures(scale):
    data = {}
    for domain in DOMAIN_SIZES:
        figure = figure_domain_size(domain, FIGURE_IDS[domain], scale)
        emit(FIGURE_IDS[domain], format_figure(figure))
        data[domain] = figure
    return data


@pytest.mark.parametrize("domain", DOMAIN_SIZES)
def test_domain_size_figure(benchmark, figures, scale, domain):
    pair = zipf_pair(scale.stream_length, domain, 1.0, seed=0)
    window = scale.window
    run_once(benchmark, solve_opt, pair, window, window if window % 2 == 0 else window - 1)

    figure = figures[domain]
    rand = figure.series_by_label("RAND/OPT").y
    prob = figure.series_by_label("PROB/OPT").y
    exact = figure.series_by_label("EXACT/OPT").y

    assert all(r <= 1.0 + 1e-9 for r in rand)
    assert all(p <= 1.0 + 1e-9 for p in prob)
    assert all(e >= 1.0 - 1e-9 for e in exact)
    assert all(p >= r for p, r in zip(prob, rand))


def test_domain_size_trend(benchmark, figures, scale):
    """EXACT/OPT falls towards 1 as the domain grows (paper's headline)."""
    pair = zipf_pair(scale.stream_length, DOMAIN_SIZES[-1], 1.0, seed=0)
    window = scale.window
    run_once(
        benchmark, solve_opt, pair, window, window if window % 2 == 0 else window - 1
    )

    # Compare EXACT/OPT at the largest memory point across domains.
    ratios = [figures[domain].series_by_label("EXACT/OPT").y[-1] for domain in DOMAIN_SIZES]
    assert ratios[-1] <= ratios[0] + 1e-9
    # At the largest domain, OPT nearly reaches EXACT with M = w (the
    # paper: "the graphs for OPT and EXACT meet already for M = w").
    memories = figures[DOMAIN_SIZES[-1]].params["memories"]
    at_w = memories.index(
        min(memories, key=lambda m: abs(m - scale.window))
    )
    assert figures[DOMAIN_SIZES[-1]].series_by_label("EXACT/OPT").y[at_w] < 1.35
