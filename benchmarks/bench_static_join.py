"""Section 3.1: static join load shedding (S1) and the m-relation case (S2).

Benchmarks the optimal DP kernel and regenerates the DP-vs-baselines
table plus the 3-relation approximation study.
"""

import pytest

from _bench_utils import emit_figure, emit_table, run_once
from repro.core.static_join import extract_components, min_edges_lost_deleting, total_nodes
from repro.experiments import format_table
from repro.experiments.config import DEFAULT_DOMAIN
from repro.experiments.figures import multiway_join_study, static_join_study
from repro.streams import zipf_pair


@pytest.fixture(scope="module")
def table(scale):
    data = static_join_study(scale)
    emit_table("static_join", data)
    return data


@pytest.fixture(scope="module")
def multiway_table():
    data = multiway_join_study()
    emit_table("multiway_join", data)
    return data


def test_static_join_dp(benchmark, table, scale):
    size = max(scale.stream_length // 4, 50)
    pair = zipf_pair(size, DEFAULT_DOMAIN, 1.0, seed=0)
    components = extract_components(pair.r, pair.s)
    k = total_nodes(components) // 2
    run_once(benchmark, min_edges_lost_deleting, components, k)

    for row in table.rows:
        _k, full, optimal, greedy, random_drop = row
        assert random_drop <= optimal <= full
        assert greedy <= optimal
    # The DP's edge over random deletion widens as more is deleted.
    advantages = [row[2] - row[4] for row in table.rows]
    assert advantages[-2] > advantages[0]


def test_multiway_approximation(benchmark, multiway_table):
    import numpy as np

    from repro.core.static_join.multiway import MultiwayInstance, independent_selection

    rng = np.random.default_rng(0)
    relations = [rng.integers(0, 6, size=200).tolist() for _ in range(3)]
    instance = MultiwayInstance.from_relations(relations)
    run_once(benchmark, independent_selection, instance, [40, 40, 40])

    columns = multiway_table.columns
    opt_loss = columns.index("optimal loss")
    approx_loss = columns.index("approx loss")
    for row in multiway_table.rows:
        # The paper's m-approximation guarantee with m = 3.
        assert row[approx_loss] <= 3 * row[opt_loss] or row[opt_loss] == 0
