"""Figure 6: effect of Zipf skew on RAND and PROB as fractions of OPT.

Also regenerates the correlated variant the paper reports in prose
("results for correlated Zipf distributions were almost identical").
"""

import pytest

from _bench_utils import emit_figure, emit_table, run_once
from repro.experiments import format_figure
from repro.experiments.config import DEFAULT_DOMAIN, even_memory
from repro.experiments.figures import figure6
from repro.core.offline import solve_opt
from repro.streams import zipf_pair


@pytest.fixture(scope="module")
def figure(scale):
    data = figure6(scale)
    emit_figure("figure6", data)
    return data


@pytest.fixture(scope="module")
def figure_correlated(scale):
    data = figure6(scale, correlation="correlated", skews=(0.0, 1.0, 2.0))
    emit_figure("figure6_correlated", data)
    return data


def test_figure6(benchmark, figure, scale):
    window = scale.window
    memory = even_memory(window, 1.0)
    pair = zipf_pair(scale.stream_length, DEFAULT_DOMAIN, 1.0, seed=0)
    run_once(benchmark, solve_opt, pair, window, memory)

    rand = figure.series_by_label("RAND/OPT").y
    prob = figure.series_by_label("PROB/OPT").y
    skews = figure.series_by_label("PROB/OPT").x

    # Coincide at skew 0, then the gap widens with skew.
    assert abs(prob[0] - rand[0]) < 0.12
    gaps = [p - r for p, r in zip(prob, rand)]
    assert gaps[-1] > 0.25
    assert gaps[-1] > gaps[0]
    # PROB approaches OPT for strong skew (paper: >96% at paper scale).
    high_skew = [p for z, p in zip(skews, prob) if z >= 1.5]
    assert max(high_skew) > 0.85


def test_figure6_correlated(benchmark, figure, figure_correlated, scale):
    window = scale.window
    memory = even_memory(window, 1.0)
    pair = zipf_pair(
        scale.stream_length, DEFAULT_DOMAIN, 1.0, correlation="correlated", seed=0
    )
    from repro.experiments import run_algorithm

    run_once(benchmark, run_algorithm, "PROB", pair, window, memory)

    # Correlation does not change the *relative* performance: PROB/OPT at
    # matching skews stays within a modest band of the uncorrelated runs.
    base = {z: p for z, p in figure.series_by_label("PROB/OPT").points}
    for z, p in figure_correlated.series_by_label("PROB/OPT").points:
        assert abs(p - base[z]) < 0.15
