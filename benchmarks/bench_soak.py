"""Write BENCH_soak.json: bounded-memory soak of the incremental path.

The source refactor's claim is that the engine stack can consume an
*unbounded* stream in memory bounded by the window/budget — never by
stream length.  This soak drives millions of ticks from an unbounded
generator source through the two incremental lanes and asserts, with
``tracemalloc`` telling the truth, that live memory is **flat**:

* the streaming EXACT lane (``repro.core.batched.exact_stream_counts``
  — two count dicts plus two expiry deques) over ``--ticks`` ticks
  (default 2,000,000);
* the full policy engine path (``JoinEngine.run_stream`` running PROB
  with a live EWMA estimator) over ``--policy-ticks`` ticks (default
  200,000) — the per-tuple kernel, policy heap, and online statistics
  must all hold window/domain-bounded state too.

Live memory is sampled at evenly spaced checkpoints; the first
checkpoint is warmup (dicts and deques reach their steady-state
footprint inside one window), and every later sample must stay within
``--slack-pct`` (default 5%) plus ``--slack-kib`` (default 64 KiB) of
it.  A leak that scales with ticks — a forgotten per-arrival list, a
materialized output, an unbounded queue — blows through that band
within one checkpoint interval.

Output counts are recorded too: the soak is deterministic, so the
regression gate (``benchmarks/regression.py``) re-runs it and fails on
*any* drift, memory or semantics.

Run:  python benchmarks/bench_soak.py [--ticks 2000000] [--out BENCH_soak.json]
Or:   make soak
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import tracemalloc
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without `make install`
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import RunSpec, run
from repro.core.batched import exact_stream_counts
from repro.streams.sources import ZipfSource

SEED = 0
DOMAIN = 50
SKEW = 1.0
WINDOW = 100
CHECKPOINTS = 8


def _flatness(samples: list[tuple[int, int]], *, slack_pct: float,
              slack_kib: float) -> tuple[bool, str]:
    """Whether post-warmup live memory stayed inside the band."""
    if len(samples) < 3:
        return False, f"only {len(samples)} checkpoints; need >= 3"
    baseline = samples[1][1]  # samples[0] is warmup
    ceiling = baseline * (1 + slack_pct / 100) + slack_kib * 1024
    worst_tick, worst = max(samples[1:], key=lambda s: s[1])
    if worst > ceiling:
        return False, (
            f"live memory grew from {baseline / 1024:.1f} KiB to "
            f"{worst / 1024:.1f} KiB at tick {worst_tick} "
            f"(ceiling {ceiling / 1024:.1f} KiB) — the incremental path "
            "is accumulating per-tick state"
        )
    return True, ""


def soak_exact_lane(ticks: int, *, slack_pct: float, slack_kib: float) -> dict:
    """Millions of ticks through the streaming EXACT count lane."""
    source = ZipfSource(DOMAIN, SKEW, seed=SEED)  # unbounded
    every = max(1, ticks // CHECKPOINTS)
    samples: list[tuple[int, int]] = []

    def on_progress(t, output, total, arrivals, expired_r, expired_s):
        samples.append((t, tracemalloc.get_traced_memory()[0]))

    tracemalloc.start()
    start = time.perf_counter()
    output, total, arrivals, _, _, seen = exact_stream_counts(
        iter(source), WINDOW, 2 * WINDOW,
        capacity=2 * WINDOW, variable=False,
        until=ticks, on_progress=on_progress, progress_every=every,
    )
    seconds = time.perf_counter() - start
    tracemalloc.stop()

    flat, why = _flatness(samples, slack_pct=slack_pct, slack_kib=slack_kib)
    return {
        "ticks": seen,
        "output": output,
        "total_output": total,
        "arrivals": arrivals,
        "seconds": round(seconds, 3),
        "ktuples_per_second": round(seen / seconds / 1000, 2),
        "memory_kib": [round(b / 1024, 1) for _, b in samples],
        "flat": flat,
        "mismatch": why,
    }


def soak_policy_path(ticks: int, *, slack_pct: float, slack_kib: float) -> dict:
    """The full engine path: PROB + live EWMA over an unbounded source."""
    spec = RunSpec(
        algorithm="PROB", window=WINDOW, memory=WINDOW // 2, seed=SEED,
        source=ZipfSource(DOMAIN, SKEW, seed=SEED), duration=ticks,
        estimator="ewma",
    )
    every = max(1, ticks // CHECKPOINTS)
    samples: list[tuple[int, int]] = []
    seen = {"t": 0}

    def on_summary(summary):
        seen["t"] += every
        samples.append((seen["t"], tracemalloc.get_traced_memory()[0]))

    tracemalloc.start()
    start = time.perf_counter()
    result = run(spec, on_summary=on_summary, on_summary_every=every)
    seconds = time.perf_counter() - start
    tracemalloc.stop()

    flat, why = _flatness(samples, slack_pct=slack_pct, slack_kib=slack_kib)
    return {
        "ticks": result.length,
        "output": result.output_count,
        "seconds": round(seconds, 3),
        "ktuples_per_second": round(result.length / seconds / 1000, 2),
        "memory_kib": [round(b / 1024, 1) for _, b in samples],
        "flat": flat,
        "mismatch": why,
    }


def build_soak_snapshot(ticks: int, policy_ticks: int, *,
                        slack_pct: float = 5.0,
                        slack_kib: float = 64.0) -> dict:
    exact = soak_exact_lane(ticks, slack_pct=slack_pct, slack_kib=slack_kib)
    policy = soak_policy_path(policy_ticks, slack_pct=slack_pct,
                              slack_kib=slack_kib)
    mismatches = [
        f"{lane}: {leg['mismatch']}"
        for lane, leg in (("exact", exact), ("policy", policy))
        if not leg["flat"]
    ]
    return {
        "benchmark": "soak",
        "parameters": {
            "ticks": ticks,
            "policy_ticks": policy_ticks,
            "window": WINDOW,
            "domain": DOMAIN,
            "skew": SKEW,
            "seed": SEED,
            "checkpoints": CHECKPOINTS,
            "slack_pct": slack_pct,
            "slack_kib": slack_kib,
        },
        "exact": exact,
        "policy": policy,
        "counts": {
            "exact_output": exact["output"],
            "exact_total_output": exact["total_output"],
            "policy_output": policy["output"],
        },
        "flat_memory": not mismatches,
        "mismatches": mismatches,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ticks", type=int, default=2_000_000,
                        help="EXACT-lane soak length (default 2,000,000)")
    parser.add_argument("--policy-ticks", type=int, default=200_000,
                        dest="policy_ticks",
                        help="policy-path soak length (default 200,000)")
    parser.add_argument("--slack-pct", type=float, default=5.0,
                        dest="slack_pct",
                        help="allowed post-warmup memory growth in percent")
    parser.add_argument("--slack-kib", type=float, default=64.0,
                        dest="slack_kib",
                        help="allowed absolute growth in KiB")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_soak.json"))
    args = parser.parse_args()

    if args.ticks < 3 * CHECKPOINTS:
        print(f"--ticks must be at least {3 * CHECKPOINTS}", file=sys.stderr)
        return 2

    print(f"soak: EXACT lane, {args.ticks:,} ticks from an unbounded "
          f"zipf source (tracemalloc on) ...")
    snapshot = build_soak_snapshot(
        args.ticks, args.policy_ticks,
        slack_pct=args.slack_pct, slack_kib=args.slack_kib,
    )
    exact, policy = snapshot["exact"], snapshot["policy"]
    print(f"  exact : {exact['ticks']:,} ticks in {exact['seconds']:.1f}s "
          f"({exact['ktuples_per_second']:.0f}k ticks/s), "
          f"memory {exact['memory_kib'][0]:.1f} -> "
          f"{exact['memory_kib'][-1]:.1f} KiB, flat={exact['flat']}")
    print(f"  policy: {policy['ticks']:,} ticks in {policy['seconds']:.1f}s "
          f"({policy['ktuples_per_second']:.0f}k ticks/s), "
          f"memory {policy['memory_kib'][0]:.1f} -> "
          f"{policy['memory_kib'][-1]:.1f} KiB, flat={policy['flat']}")

    Path(args.out).write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"wrote {args.out}")

    if not snapshot["flat_memory"]:
        for line in snapshot["mismatches"]:
            print(f"  FAIL {line}", file=sys.stderr)
        return 1
    print("soak OK: live memory flat on both lanes")
    return 0


if __name__ == "__main__":
    sys.exit(main())
