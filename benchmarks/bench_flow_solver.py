"""Flow-solver scaling (C1): OPT-offline solve cost vs. stream length.

The paper restricted OPT runs to 5600 tuples because CS2's runtime is
super-linear; this benchmark records how the compact formulation scales
(nodes/arcs grow linearly in stream length + join size) and times solves
at increasing sizes.
"""

import time

import pytest

from _bench_utils import emit_figure, emit_table, run_once
from repro.core.offline import extract_jobs, solve_opt
from repro.core.offline.flowgraph import build_schedule_network
from repro.experiments.config import DEFAULT_DOMAIN
from repro.experiments.figures import TableData
from repro.experiments.reporting import format_table
from repro.streams import zipf_pair


def _instance(length: int, window: int):
    pair = zipf_pair(length, DEFAULT_DOMAIN, 1.0, seed=0)
    return pair, window


@pytest.fixture(scope="module")
def table(scale):
    rows = []
    base = max(scale.stream_length // 4, 200)
    window = max(scale.window // 2, 20)
    for factor in (1, 2, 4):
        length = base * factor
        pair, window_ = _instance(length, window)
        r_jobs, s_jobs, _ = extract_jobs(pair, window_, count_from=2 * window_)
        schedule = build_schedule_network(r_jobs, length, window_ // 2)
        start = time.perf_counter()
        result = solve_opt(pair, window_, window_ if window_ % 2 == 0 else window_ - 1)
        elapsed = time.perf_counter() - start
        rows.append(
            [
                length,
                schedule.network.num_nodes,
                schedule.network.num_arcs,
                result.output_count,
                round(elapsed, 3),
            ]
        )
    data = TableData(
        table_id="flow_solver",
        title=f"OPT-offline solve scaling, w={window}",
        columns=["stream length", "nodes (R pool)", "arcs (R pool)", "OPT output", "solve s"],
        rows=rows,
        expectation=(
            "Nodes/arcs grow linearly with stream length; solve time stays "
            "far below CS2-on-Theta(wN)-graphs territory."
        ),
    )
    emit_table("flow_solver", data)
    return data


def test_flow_solver_scaling(benchmark, table, scale):
    length = max(scale.stream_length // 2, 400)
    window = max(scale.window // 2, 20)
    pair, _ = _instance(length, window)
    memory = window if window % 2 == 0 else window - 1
    run_once(benchmark, solve_opt, pair, window, memory)

    lengths = table.column("stream length")
    nodes = table.column("nodes (R pool)")
    arcs = table.column("arcs (R pool)")
    # Linear growth: doubling the stream roughly doubles the graph.
    assert nodes[-1] < nodes[0] * (lengths[-1] / lengths[0]) * 1.5
    assert arcs[-1] < arcs[0] * (lengths[-1] / lengths[0]) * 2.0
    # Output grows with stream length.
    outputs = table.column("OPT output")
    assert outputs == sorted(outputs)
