"""Slow-CPU experiment (Q1): queue-shedding policies under overload.

Extension of Section 2.1's modular model (future work in Section 6):
semantic queue shedding against random/tail drops when the CPU serves
only half the arrival rate.
"""

import pytest

from _bench_utils import emit_figure, emit_table, run_once
from repro.core.policies import ProbPolicy, SidePolicies
from repro.core.slowcpu import SlowCpuConfig, SlowCpuEngine
from repro.experiments import estimators_for, format_table
from repro.experiments.config import DEFAULT_DOMAIN, even_memory
from repro.experiments.figures import slow_cpu_study
from repro.streams import clip_schedule, poisson_schedule, zipf_pair


@pytest.fixture(scope="module")
def table(scale):
    data = slow_cpu_study(scale)
    emit_table("slow_cpu", data)
    return data


def test_slow_cpu(benchmark, table, scale):
    length = scale.stream_length
    pair = zipf_pair(length, DEFAULT_DOMAIN, 1.0, seed=0)
    estimators = estimators_for(pair)
    r_schedule = clip_schedule(poisson_schedule(length, 1.0, seed=10), length)
    s_schedule = clip_schedule(poisson_schedule(length, 1.0, seed=11), length)

    def kernel():
        config = SlowCpuConfig(
            window=scale.window,
            memory=even_memory(scale.window, 0.5),
            service_per_tick=1,
            queue_capacity=max(scale.window // 4, 4),
            queue_policy="prob",
        )
        engine = SlowCpuEngine(
            config,
            policy=SidePolicies(r=ProbPolicy(estimators), s=ProbPolicy(estimators)),
            estimators=estimators,
        )
        return engine.run(pair.r, pair.s, r_schedule, s_schedule)

    run_once(benchmark, kernel)

    outputs = {row[0]: row[1] for row in table.rows}
    shed = {row[0]: row[3] for row in table.rows}
    # Semantic queue shedding wins; all policies shed comparably much.
    assert outputs["prob"] > outputs["random"]
    assert outputs["prob"] > outputs["tail"]
    assert all(count > 0 for count in shed.values())
