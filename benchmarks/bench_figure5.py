"""Figure 5: uniform join-attribute values on both inputs.

The paper's point: without skew there is no semantic signal — RAND, PROB
and LIFE coincide, and even OPT gains comparatively little.
"""

import pytest

from _bench_utils import emit_figure, emit_table, run_once
from repro.experiments import format_figure, run_algorithm
from repro.experiments.config import DEFAULT_DOMAIN
from repro.experiments.figures import figure5
from repro.streams import uniform_pair


@pytest.fixture(scope="module")
def figure(scale):
    data = figure5(scale)
    emit_figure("figure5", data)
    return data


def test_figure5(benchmark, figure, scale):
    pair = uniform_pair(scale.stream_length, DEFAULT_DOMAIN, seed=0)
    window = scale.window
    run_once(benchmark, run_algorithm, "RAND", pair, window, window)

    rand = figure.series_by_label("RAND").y
    prob = figure.series_by_label("PROB").y
    life = figure.series_by_label("LIFE").y
    opt = figure.series_by_label("OPT").y
    exact = figure.series_by_label("EXACT").y

    # All online algorithms perform equally poorly on uniform data.
    for online in (prob, life):
        for a, b in zip(online, rand):
            assert abs(a - b) / max(b, 1) < 0.15
    # The OPT advantage here is much smaller than on skewed data: at the
    # largest memory OPT essentially reaches EXACT while online lags.
    assert all(max(r, p, l) <= o <= e
               for r, p, l, o, e in zip(rand, prob, life, opt, exact))
