"""Write BENCH_runtime.json: parallel-runtime wall-clock + equality check.

Times the same run-cell grid — every algorithm x seed combination of the
Figure-3 configuration at ``ci`` scale — twice through
:func:`repro.experiments.sweep._suite_counts`: once serially and once
fanned out over :mod:`repro.runtime` worker processes.  Records both
wall-clocks, the speedup ratio, and — the part that gates — whether the
two paths produced **identical** per-cell output counts.

The determinism contract is strict (parallel must equal serial exactly);
the speedup is advisory.  Worker processes pay a real fork + pickle tax,
so on small grids or few-core machines ``workers=2`` can legitimately be
*slower* than serial — the gate in ``benchmarks/regression.py`` only
trips when the parallel path is pathologically slow (more than
``--max-slowdown`` times the serial wall-clock) or when outputs drift.

Run:  python benchmarks/bench_runtime.py [--scale ci] [--workers 2]
                                         [--out BENCH_runtime.json]
Or:   make bench-parallel
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without `make install`
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.config import DEFAULT_DOMAIN, SCALES, even_memory
from repro.experiments.sweep import _suite_counts
from repro.streams import zipf_pair

ALGORITHMS = ("RAND", "PROB", "PROBV", "LIFE")
SEEDS = (0, 1, 2)


def build_runtime_snapshot(scale_name: str, workers: int) -> dict:
    scale = SCALES[scale_name]
    length = max(scale.stream_length, 2000)
    window = max(scale.window, 100)
    memory = even_memory(window, 0.5)

    def factory(seed: int):
        return zipf_pair(length, DEFAULT_DOMAIN, 1.0, seed=seed)

    start = time.perf_counter()
    serial = _suite_counts(
        ALGORITHMS, factory, window, memory, seeds=SEEDS, workers=1
    )
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = _suite_counts(
        ALGORITHMS, factory, window, memory, seeds=SEEDS, workers=workers
    )
    parallel_seconds = time.perf_counter() - start

    mismatches = []
    for seed, serial_counts, parallel_counts in zip(SEEDS, serial, parallel):
        for name in ALGORITHMS:
            if serial_counts[name] != parallel_counts[name]:
                mismatches.append(
                    f"{name}(seed={seed}): serial {serial_counts[name]} "
                    f"!= parallel {parallel_counts[name]}"
                )

    return {
        "benchmark": "runtime_parallel",
        "scale": scale_name,
        "workload": {
            "generator": "zipf",
            "length": length,
            "domain": DEFAULT_DOMAIN,
            "skew": 1.0,
            "seeds": list(SEEDS),
        },
        "parameters": {
            "window": window,
            "memory": memory,
            "algorithms": list(ALGORITHMS),
            "workers": workers,
            "cpu_count": os.cpu_count(),
        },
        "python": sys.version.split()[0],
        "serial_seconds": round(serial_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        "speedup": round(serial_seconds / parallel_seconds, 3),
        "outputs_match": not mismatches,
        "mismatches": mismatches,
        "counts": [
            {"seed": seed, **per_seed} for seed, per_seed in zip(SEEDS, serial)
        ],
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="ci", choices=sorted(SCALES))
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_runtime.json"),
        help="where to write the snapshot",
    )
    args = parser.parse_args()

    snapshot = build_runtime_snapshot(args.scale, args.workers)
    path = Path(args.out)
    path.write_text(json.dumps(snapshot, indent=2) + "\n")

    grid = len(ALGORITHMS) * len(SEEDS)
    print(f"runtime parallel @ scale={args.scale} "
          f"({grid} cells: {len(ALGORITHMS)} algorithms x {len(SEEDS)} seeds, "
          f"workers={args.workers}, cpus={os.cpu_count()})")
    print(f"  serial   {snapshot['serial_seconds']:>8.3f}s")
    print(f"  parallel {snapshot['parallel_seconds']:>8.3f}s  "
          f"(speedup {snapshot['speedup']:.2f}x)")
    if snapshot["outputs_match"]:
        print("  outputs: parallel == serial on every cell")
    else:
        print(f"  OUTPUT MISMATCH ({len(snapshot['mismatches'])} cell(s)):")
        for line in snapshot["mismatches"]:
            print(f"    - {line}")
    print(f"written to {path}")
    return 0 if snapshot["outputs_match"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
