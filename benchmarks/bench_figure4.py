"""Figure 4: same workload as Figure 3 with the window doubled.

The paper's point: window size does not change the relative ordering of
the algorithms.
"""

import pytest

from _bench_utils import emit_figure, emit_table, run_once
from repro.experiments import format_figure, run_algorithm
from repro.experiments.config import DEFAULT_DOMAIN
from repro.experiments.figures import figure4
from repro.streams import zipf_pair


@pytest.fixture(scope="module")
def figure(scale):
    data = figure4(scale)
    emit_figure("figure4", data)
    return data


def test_figure4(benchmark, figure, scale):
    pair = zipf_pair(scale.stream_length, DEFAULT_DOMAIN, 1.0, seed=0)
    window = scale.window_large
    run_once(benchmark, run_algorithm, "PROB", pair, window, window)

    rand = figure.series_by_label("RAND").y
    prob = figure.series_by_label("PROB").y
    opt = figure.series_by_label("OPT").y
    exact = figure.series_by_label("EXACT").y

    # Same ordering as Figure 3 despite the doubled window.
    assert all(p > r for p, r in zip(prob, rand))
    assert all(p <= o <= e for p, o, e in zip(prob, opt, exact))
    assert rand == sorted(rand)
