"""Write BENCH_chaos.json: fault-injected recovery identity check.

The fault-tolerance contract (see docs/architecture.md) is *recovery
identity*: a sharded run that loses a worker mid-run and retries from
its last checkpoint must be bit-identical — output count, total output,
per-side drop ledger — to the fault-free run of the same spec.  This
benchmark exercises that contract end to end with a seeded
:class:`~repro.runtime.FaultPlan`:

* EXACT and PROB sharded runs, fault-free, at ``workers`` processes
  (the baseline truth);
* the same specs with a seeded worker kill plus checkpoint/retry, at
  both one worker (supervised-serial path) and ``workers`` processes
  (pooled path) — each must match the fault-free result exactly;
* a degrade leg: retries exhausted on one shard with ``degrade=True``
  must merge the survivors and report a ``lost_output`` that exactly
  reconciles the output deficit (EXACT makes the forgone output
  computable).

Wall-clocks are recorded but advisory; the gate in
``benchmarks/regression.py`` trips only on identity or reconciliation
drift.

Run:  python benchmarks/bench_chaos.py [--scale ci] [--shards 3]
                                       [--workers 2] [--out BENCH_chaos.json]
Or:   make bench-chaos
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without `make install`
    sys.path.insert(0, str(REPO_ROOT / "src"))

from dataclasses import replace

from repro.api import RunSpec, build_pair, run
from repro.experiments.config import DEFAULT_DOMAIN, SCALES, even_memory
from repro.runtime import Fault, FaultPlan

SEED = 0
FAULT_SEED = 7
CHECKPOINT_EVERY = 16


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _fingerprint(result) -> dict:
    """The identity-gated view of one run."""
    return {
        "output": result.output_count,
        "total_output": result.total_output_count,
        "drops": result.drop_breakdown().as_dict(),
    }


def build_chaos_snapshot(scale_name: str, shards: int, workers: int) -> dict:
    scale = SCALES[scale_name]
    length = max(scale.stream_length, 2000)
    window = max(scale.window, 100)
    memory = even_memory(window, 0.5)

    mismatches = []
    recovered = {}
    baseline = {}
    seconds = {}

    # One seeded kill somewhere in the grid; `attempts=1` means the
    # fault fires on the first attempt only, so one retry recovers.
    plan = FaultPlan.seeded(FAULT_SEED, cells=shards, ticks=length)

    for algorithm in ("EXACT", "PROB"):
        spec = RunSpec(
            algorithm=algorithm, window=window, memory=memory,
            length=length, domain=DEFAULT_DOMAIN, seed=SEED, shards=shards,
        )
        pair = build_pair(spec)
        clean, clean_seconds = _timed(lambda: run(spec, pair=pair, workers=workers))
        baseline[algorithm] = _fingerprint(clean)
        seconds[f"{algorithm.lower()}_clean"] = round(clean_seconds, 4)

        faulty_spec = replace(
            spec, max_retries=2, checkpoint_every=CHECKPOINT_EVERY,
        )
        for label, n_workers in (("serial", 1), ("pooled", workers)):
            result, wall = _timed(
                lambda: run(
                    faulty_spec, pair=pair, workers=n_workers, fault_plan=plan
                )
            )
            recovered[f"{algorithm.lower()}_{label}"] = _fingerprint(result)
            seconds[f"{algorithm.lower()}_{label}"] = round(wall, 4)
            if _fingerprint(result) != baseline[algorithm]:
                mismatches.append(
                    f"{algorithm} {label} recovered run differs from "
                    f"fault-free: {_fingerprint(result)} != "
                    f"{baseline[algorithm]}"
                )

    # Degrade leg: a shard that fails on every attempt, with retries
    # exhausted, must be reported — and the report must reconcile.
    exact_spec = RunSpec(
        algorithm="EXACT", window=window, memory=memory,
        length=length, domain=DEFAULT_DOMAIN, seed=SEED, shards=shards,
        max_retries=0, degrade=True,
    )
    pair = build_pair(exact_spec)
    lost_cell = plan.faults[0].cell
    stubborn = FaultPlan(
        (Fault("kill", cell=lost_cell, tick=plan.faults[0].tick,
               attempts=1_000_000),)
    )
    degraded = run(exact_spec, pair=pair, workers=workers, fault_plan=stubborn)
    reconciles = (
        degraded.lost_shards == (lost_cell,)
        and degraded.lost_output is not None
        and degraded.output_count + degraded.lost_output
        == baseline["EXACT"]["output"]
    )
    if not reconciles:
        mismatches.append(
            f"degrade: output {degraded.output_count} + lost "
            f"{degraded.lost_output} does not reconcile to fault-free "
            f"{baseline['EXACT']['output']} "
            f"(lost_shards={degraded.lost_shards})"
        )

    return {
        "benchmark": "chaos_recovery",
        "scale": scale_name,
        "workload": {
            "generator": "zipf",
            "length": length,
            "domain": DEFAULT_DOMAIN,
            "skew": 1.0,
            "seed": SEED,
        },
        "parameters": {
            "window": window,
            "memory": memory,
            "shards": shards,
            "workers": workers,
            "fault_seed": FAULT_SEED,
            "checkpoint_every": CHECKPOINT_EVERY,
            "killed_cell": lost_cell,
            "killed_tick": plan.faults[0].tick,
            "cpu_count": os.cpu_count(),
        },
        "python": sys.version.split()[0],
        "seconds": seconds,
        "recovery_identical": not mismatches,
        "mismatches": mismatches,
        "counts": {
            "exact_output": baseline["EXACT"]["output"],
            "prob_sharded_output": baseline["PROB"]["output"],
            "degraded_output": degraded.output_count,
            "lost_output": degraded.lost_output,
        },
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="ci", choices=sorted(SCALES))
    parser.add_argument("--shards", type=int, default=3)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_chaos.json"),
        help="where to write the snapshot",
    )
    args = parser.parse_args()

    snapshot = build_chaos_snapshot(args.scale, args.shards, args.workers)
    path = Path(args.out)
    path.write_text(json.dumps(snapshot, indent=2) + "\n")

    params = snapshot["parameters"]
    print(f"chaos recovery @ scale={args.scale} "
          f"(shards={args.shards}, workers={args.workers}, "
          f"kill cell {params['killed_cell']} at tick {params['killed_tick']})")
    for key, value in snapshot["seconds"].items():
        print(f"  {key:<14} {value:>8.3f}s")
    if snapshot["recovery_identical"]:
        print("  identity: recovered runs == fault-free runs; "
              "degraded run reconciles "
              f"({snapshot['counts']['degraded_output']} + "
              f"{snapshot['counts']['lost_output']} = "
              f"{snapshot['counts']['exact_output']})")
    else:
        print(f"  RECOVERY VIOLATION ({len(snapshot['mismatches'])} issue(s)):")
        for line in snapshot["mismatches"]:
            print(f"    - {line}")
    print(f"written to {path}")
    return 0 if snapshot["recovery_identical"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
