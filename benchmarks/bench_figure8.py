"""Figure 8: PROBV's memory allocation between R and S over time.

The paper observes the split staying at the 50-50 mark throughout the
weather run because the two years' distributions are nearly identical.
"""

import pytest

from _bench_utils import emit_figure, emit_table, run_once
from repro.experiments import format_figure, run_algorithm
from repro.experiments.config import even_memory
from repro.experiments.figures import figure8
from repro.streams import weather_pair


@pytest.fixture(scope="module")
def figure(scale):
    data = figure8(scale)
    emit_figure("figure8", data)
    return data


def test_figure8(benchmark, figure, scale):
    pair = weather_pair(min(scale.weather_length, 20_000), seed=0)
    window = scale.weather_window
    run_once(
        benchmark,
        run_algorithm,
        "PROBV",
        pair,
        window,
        even_memory(window, 1.0),
        warmup=scale.weather_warmup,
        track_shares=True,
        share_sample_every=max(1, len(pair) // 200),
    )

    shares = figure.series[0].y
    # Skip the fill-up phase, then require the share to hover around 1/2.
    post_warmup = shares[len(shares) // 4:]
    assert post_warmup, "share trace is empty"
    mean_share = sum(post_warmup) / len(post_warmup)
    assert 0.45 < mean_share < 0.55
    assert all(0.3 < s < 0.7 for s in post_warmup)
