"""Perf-regression gate: fresh snapshot vs. the committed baseline.

Rebuilds the engine-throughput snapshot (``benchmarks/snapshot.py``)
at the baseline's own scale/seed and compares per policy:

* ``output_count`` must match **exactly** — the engines are
  deterministic, so any drift is a semantics change, not noise;
* ``ktuples_per_second`` may not fall more than ``--tolerance``
  (default 20%) below the baseline;
* ``metrics_overhead_pct`` / ``trace_overhead_pct`` may not grow more
  than ``--overhead-slack`` percentage points (default 20) over the
  baseline, widened to the baseline's own value for already-large
  overheads — i.e. the gate trips when instrumentation cost roughly
  doubles, since the ratio of two noisy timings spreads with its
  magnitude and a tighter band would flake.

Timings are taken with instrumentation *disabled* (the overhead columns
time it separately), so the gate measures the null path the paper's
throughput claims depend on.  Throughput gains and overhead drops never
fail the gate; only regressions do.

When a committed ``BENCH_runtime.json`` exists (written by
``make bench-parallel`` / ``benchmarks/bench_runtime.py``), the gate
also rebuilds the parallel-runtime snapshot and checks the
:mod:`repro.runtime` determinism contract: parallel output counts must
equal serial ones and match the committed baseline exactly, and the
parallel wall-clock may not exceed ``--max-slowdown`` (default 5x) times
the serial one.  Speedup itself is advisory — CI runners may have a
single core.

Likewise, when a committed ``BENCH_shard.json`` exists (written by
``make bench-shard`` / ``benchmarks/bench_shard.py``), the gate rebuilds
the sharded-execution snapshot and checks the partition layer's
contract: sharded EXACT must reproduce unsharded EXACT identically
(output, total, drop ledger), the snapshot's deterministic counts must
match the committed baseline exactly, and the sharded wall-clock may
not exceed ``--max-shard-slowdown`` (default 25x) times the unsharded
one.

And when a committed ``BENCH_chaos.json`` exists (written by
``make bench-chaos`` / ``benchmarks/bench_chaos.py``), the gate rebuilds
the chaos-recovery snapshot and checks the fault-tolerance contract: a
sharded run that loses a worker to a seeded kill and retries from its
last checkpoint must reproduce the fault-free result bit-identically,
and a degraded run (retries exhausted, ``degrade=True``) must report a
``lost_output`` that exactly reconciles the output deficit.

When a committed ``BENCH_batch.json`` exists (written by
``make bench-batch`` / ``benchmarks/bench_batch.py``), the gate rebuilds
the columnar-batch snapshot and checks the batched lane's contract:
every batched run must be bit-identical to its per-tuple twin (output,
ledger, metrics totals, survival — across policies, chunk sizes, and
shards), the deterministic counts must match the committed baseline
exactly, and batched EXACT throughput must stay at least
``--min-batch-speedup`` (default 1.5) times the per-tuple throughput
measured in the same interleaved rounds.

When a committed ``BENCH_policy.json`` exists (written by
``make bench-policy`` / ``benchmarks/bench_policy_batch.py``), the gate
rebuilds the policy-lane snapshot and checks the vectorized policy
lanes' contract: every batched RAND/PROB/LIFE run (both allocation
modes, all chunk sizes, sharded included) must be bit-identical to its
per-tuple twin — output, ledger, survival, metrics totals — the
deterministic counts must match the committed baseline exactly, and
batched PROB and LIFE throughput must stay at least
``--min-policy-speedup`` (default 2.0) times the per-tuple throughput
measured in the same interleaved rounds.

When a committed ``BENCH_soak.json`` exists (written by ``make soak``
/ ``benchmarks/bench_soak.py``), the gate re-runs the bounded-memory
soak — an unbounded zipf source through the streaming EXACT lane and
the full PROB+EWMA engine path with ``tracemalloc`` on — and checks
the incremental path's contract: live memory must stay flat
(window-bounded, never stream-length-bounded), and the deterministic
output counts must match the committed baseline exactly when the
rebuild runs at the baseline's own tick budget (``--soak-ticks`` can
shorten the rebuild, which then gates flatness only).

Finally, when a committed ``BENCH_obs.json`` exists (written by
``make bench-obs`` / ``benchmarks/bench_telemetry.py``), the gate
rebuilds the telemetry-plane snapshot and checks its contract:
telemetry-on must reproduce telemetry-off bit-identically, the merged
timeline's heartbeat count must match the committed baseline exactly
(it is a pure function of the spec), the faulted leg must carry its
fault / retry / checkpoint-restore spans, and the measured CPU
overhead must stay within the snapshot's budget.  Exit status: 0 pass,
1 fail, 2 bad invocation.

Run:  python benchmarks/regression.py [--baseline BENCH_engine.json]
                                      [--tolerance 0.2] [--repeats N]
                                      [--skip-runtime] [--skip-shard]
                                      [--skip-chaos] [--skip-obs]
                                      [--skip-batch] [--skip-policy]
                                      [--skip-soak]
Or:   make bench-gate
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without `make install`
    sys.path.insert(0, str(REPO_ROOT / "src"))

from bench_batch import build_batch_snapshot  # noqa: E402 - sibling module
from bench_chaos import build_chaos_snapshot  # noqa: E402 - sibling module
from bench_policy_batch import build_policy_snapshot  # noqa: E402 - sibling module
from bench_runtime import build_runtime_snapshot  # noqa: E402 - sibling module
from bench_soak import build_soak_snapshot  # noqa: E402 - sibling module
from bench_telemetry import build_obs_snapshot  # noqa: E402 - sibling module
from bench_shard import build_shard_snapshot  # noqa: E402 - sibling module
from snapshot import build_snapshot  # noqa: E402 - sibling module

#: throughput may drop at most this fraction below baseline
DEFAULT_TOLERANCE = 0.20
#: overhead columns may grow at most this many percentage points
DEFAULT_OVERHEAD_SLACK = 20.0
#: parallel wall-clock may be at most this many times the serial one
DEFAULT_MAX_SLOWDOWN = 5.0
#: sharded wall-clock may be at most this many times the unsharded one
#: (per-shard async-engine ticks + pool tax make sharding legitimately
#: slower on small workloads; this catches pathologies only)
DEFAULT_MAX_SHARD_SLOWDOWN = 25.0

#: batched EXACT must stay at least this many times the per-tuple rate
DEFAULT_MIN_BATCH_SPEEDUP = 1.5

#: batched PROB/LIFE must stay at least this many times the per-tuple rate
DEFAULT_MIN_POLICY_SPEEDUP = 2.0

OVERHEAD_FIELDS = ("metrics_overhead_pct", "trace_overhead_pct")


def compare_snapshots(
    baseline: dict,
    fresh: dict,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    overhead_slack: float = DEFAULT_OVERHEAD_SLACK,
) -> list[str]:
    """Failure messages (empty list == gate passes).

    Policies present only on one side fail loudly — a silently dropped
    policy is exactly the kind of regression a gate exists to catch.
    Overhead fields missing from the *baseline* are skipped (older
    snapshots predate ``trace_overhead_pct``), not treated as growth.
    """
    failures: list[str] = []
    base_policies = {entry["policy"]: entry for entry in baseline.get("policies", [])}
    fresh_policies = {entry["policy"]: entry for entry in fresh.get("policies", [])}

    for name in base_policies:
        if name not in fresh_policies:
            failures.append(f"{name}: missing from fresh snapshot")
    for name in fresh_policies:
        if name not in base_policies:
            failures.append(f"{name}: missing from baseline (regenerate it)")

    for name, base in base_policies.items():
        current = fresh_policies.get(name)
        if current is None:
            continue
        if current["output_count"] != base["output_count"]:
            failures.append(
                f"{name}: output_count changed "
                f"{base['output_count']} -> {current['output_count']} "
                "(engines are deterministic; this is a semantics change)"
            )
        floor = base["ktuples_per_second"] * (1.0 - tolerance)
        if current["ktuples_per_second"] < floor:
            drop = 100 * (
                1 - current["ktuples_per_second"] / base["ktuples_per_second"]
            )
            failures.append(
                f"{name}: throughput {current['ktuples_per_second']:.2f} "
                f"k-tuples/s is {drop:.1f}% below baseline "
                f"{base['ktuples_per_second']:.2f} "
                f"(tolerance {100 * tolerance:.0f}%)"
            )
        for field in OVERHEAD_FIELDS:
            if field not in base or field not in current:
                continue
            # Overhead is a ratio of two noisy timings, so its run-to-run
            # spread grows with its magnitude; flag only when overhead
            # roughly doubles (plus the flat slack for small baselines) —
            # the gate is for pathologies, not timer jitter.
            slack = max(overhead_slack, abs(base[field]))
            ceiling = base[field] + slack
            if current[field] > ceiling:
                failures.append(
                    f"{name}: {field} grew {base[field]:+.1f}% -> "
                    f"{current[field]:+.1f}% "
                    f"(slack {slack:.0f} points)"
                )
    return failures


def check_runtime(
    baseline: dict,
    fresh: dict,
    *,
    max_slowdown: float = DEFAULT_MAX_SLOWDOWN,
) -> list[str]:
    """Failure messages for the parallel-runtime snapshot.

    Two hard conditions and one loose one:

    * fresh parallel outputs must equal fresh serial outputs (the
      determinism contract of :mod:`repro.runtime`);
    * per-cell output counts must match the committed baseline exactly
      (same determinism argument as the engine gate);
    * the parallel wall-clock may not exceed ``max_slowdown`` times the
      serial one.  Speedup is *not* asserted — a single-core runner makes
      ``workers=2`` legitimately slower than serial — but a runaway
      pickling or pool-startup pathology still trips the gate.
    """
    failures: list[str] = []
    if not fresh.get("outputs_match", False):
        for line in fresh.get("mismatches", []):
            failures.append(f"runtime: parallel != serial: {line}")

    base_counts = {
        entry["seed"]: entry for entry in baseline.get("counts", [])
    }
    for entry in fresh.get("counts", []):
        base = base_counts.get(entry["seed"])
        if base is None:
            continue
        for name, count in entry.items():
            if name == "seed":
                continue
            if name in base and base[name] != count:
                failures.append(
                    f"runtime: {name}(seed={entry['seed']}) output_count "
                    f"changed {base[name]} -> {count} "
                    "(engines are deterministic; this is a semantics change)"
                )

    serial = fresh.get("serial_seconds", 0.0)
    parallel = fresh.get("parallel_seconds", 0.0)
    if serial > 0 and parallel > serial * max_slowdown:
        failures.append(
            f"runtime: parallel wall-clock {parallel:.3f}s is "
            f"{parallel / serial:.1f}x the serial {serial:.3f}s "
            f"(max slowdown {max_slowdown:.0f}x)"
        )
    return failures


def check_shard(
    baseline: dict,
    fresh: dict,
    *,
    max_slowdown: float = DEFAULT_MAX_SHARD_SLOWDOWN,
) -> list[str]:
    """Failure messages for the sharded-execution snapshot.

    * the fresh run must be EXACT-identical (sharded output, total, and
      drop ledger equal to unsharded) — the partition layer's hard
      guarantee, checked strictly;
    * the EXACT and sharded-PROB output counts must match the committed
      baseline exactly (determinism: same spec, same result);
    * the sharded parallel wall-clock may not exceed ``max_slowdown``
      times the unsharded one — generous, because per-shard async ticks
      and pool startup make sharding legitimately slower at CI scale.
    """
    failures: list[str] = []
    if not fresh.get("exact_identical", False):
        for line in fresh.get("mismatches", []):
            failures.append(f"shard: {line}")

    base_counts = baseline.get("counts", {})
    fresh_counts = fresh.get("counts", {})
    for name in ("exact_output", "exact_total_output", "prob_sharded_output"):
        if name in base_counts and name in fresh_counts:
            if base_counts[name] != fresh_counts[name]:
                failures.append(
                    f"shard: {name} changed {base_counts[name]} -> "
                    f"{fresh_counts[name]} (deterministic; this is a "
                    "semantics change)"
                )

    unsharded = fresh.get("unsharded_seconds", 0.0)
    parallel = fresh.get("parallel_seconds", 0.0)
    if unsharded > 0 and parallel > unsharded * max_slowdown:
        failures.append(
            f"shard: sharded wall-clock {parallel:.3f}s is "
            f"{parallel / unsharded:.1f}x the unsharded {unsharded:.3f}s "
            f"(max slowdown {max_slowdown:.0f}x)"
        )
    return failures


def check_chaos(baseline: dict, fresh: dict) -> list[str]:
    """Failure messages for the chaos-recovery snapshot.

    * the fresh run must be recovery-identical (every recovered run ==
      its fault-free twin, and the degraded run reconciles) — the
      fault-tolerance layer's hard guarantee, checked strictly;
    * the deterministic counts must match the committed baseline
      exactly (same spec + same fault plan must give the same result).

    No wall-clock gate: retries legitimately replay work, and the
    identity checks are what the contract is about.
    """
    failures: list[str] = []
    if not fresh.get("recovery_identical", False):
        for line in fresh.get("mismatches", []):
            failures.append(f"chaos: {line}")

    base_counts = baseline.get("counts", {})
    fresh_counts = fresh.get("counts", {})
    for name in ("exact_output", "prob_sharded_output",
                 "degraded_output", "lost_output"):
        if name in base_counts and name in fresh_counts:
            if base_counts[name] != fresh_counts[name]:
                failures.append(
                    f"chaos: {name} changed {base_counts[name]} -> "
                    f"{fresh_counts[name]} (deterministic; this is a "
                    "semantics change)"
                )
    return failures


def check_batch(
    baseline: dict,
    fresh: dict,
    *,
    min_speedup: float = DEFAULT_MIN_BATCH_SPEEDUP,
) -> list[str]:
    """Failure messages for the columnar-batch snapshot.

    * the fresh run must be batch-identical (every batched run == its
      per-tuple twin across policies, chunk sizes, and shards) — the
      batched lane's hard guarantee, checked strictly;
    * the deterministic counts must match the committed baseline
      exactly (same spec, same result);
    * batched EXACT throughput must be at least ``min_speedup`` times
      the per-tuple throughput from the *same* interleaved rounds —
      both sides of the ratio share each round's machine conditions, so
      the floor is noise-robust in a way a cross-run comparison against
      the committed baseline would not be.
    """
    failures: list[str] = []
    if not fresh.get("batched_identical", False):
        for line in fresh.get("mismatches", []):
            failures.append(f"batch: {line}")

    base_counts = baseline.get("counts", {})
    fresh_counts = fresh.get("counts", {})
    for name in ("exact_output", "exact_total_output"):
        if name in base_counts and name in fresh_counts:
            if base_counts[name] != fresh_counts[name]:
                failures.append(
                    f"batch: {name} changed {base_counts[name]} -> "
                    f"{fresh_counts[name]} (deterministic; this is a "
                    "semantics change)"
                )

    speedup = fresh.get("speedup", 0.0)
    if speedup < min_speedup:
        failures.append(
            f"batch: batched EXACT speedup {speedup:.2f}x is below the "
            f"{min_speedup:.1f}x floor "
            f"(batched {fresh.get('batched_ktuples_per_second', 0):.2f} vs "
            f"per-tuple {fresh.get('serial_ktuples_per_second', 0):.2f} "
            "k-tuples/s)"
        )
    return failures


def check_policy(
    baseline: dict,
    fresh: dict,
    *,
    min_speedup: float = DEFAULT_MIN_POLICY_SPEEDUP,
) -> list[str]:
    """Failure messages for the policy-lane snapshot.

    * the fresh run must be batch-identical (every batched RAND, PROB,
      and LIFE run — both allocation modes, all chunk sizes, sharded
      included — equal to its per-tuple twin on output, ledger,
      survival, and metrics totals) — the policy lanes' hard guarantee,
      checked strictly;
    * the deterministic per-policy counts must match the committed
      baseline exactly (shedding decisions are seeded and reproducible;
      drift is a semantics change);
    * batched PROB and LIFE throughput must be at least ``min_speedup``
      times per-tuple throughput from the *same* interleaved rounds
      (RAND is advisory: the floor is about the semantic policies the
      paper is about).
    """
    failures: list[str] = []
    if not fresh.get("batched_identical", False):
        for line in fresh.get("mismatches", []):
            failures.append(f"policy-batch: {line}")

    base_counts = baseline.get("counts", {})
    fresh_counts = fresh.get("counts", {})
    for name in sorted(base_counts):
        if name in fresh_counts and base_counts[name] != fresh_counts[name]:
            failures.append(
                f"policy-batch: {name} changed {base_counts[name]} -> "
                f"{fresh_counts[name]} (deterministic; this is a "
                "semantics change)"
            )

    for entry in fresh.get("policies", []):
        if not entry.get("floor_enforced", False):
            continue
        speedup = entry.get("speedup", 0.0)
        if speedup < min_speedup:
            failures.append(
                f"policy-batch: {entry['policy']} batched speedup "
                f"{speedup:.2f}x is below the {min_speedup:.1f}x floor "
                f"(batched {entry.get('batched_ktuples_per_second', 0):.2f} "
                f"vs per-tuple "
                f"{entry.get('serial_ktuples_per_second', 0):.2f} k-tuples/s)"
            )
    return failures


def check_obs(baseline: dict, fresh: dict) -> list[str]:
    """Failure messages for the telemetry-plane snapshot.

    * the fresh run must be telemetry-identical (on == off, faulted leg
      recovered with its fault/retry/restore spans) and within its CPU
      overhead budget — both folded into ``telemetry_identical`` /
      ``mismatches`` by the builder;
    * the deterministic counts — output and the merged timeline's
      heartbeat count — must match the committed baseline exactly.

    Wall-clock is never gated here; the overhead budget inside the
    snapshot is CPU-time-based and already noise-hardened.
    """
    failures: list[str] = []
    if not fresh.get("telemetry_identical", False):
        for line in fresh.get("mismatches", []):
            failures.append(f"obs: {line}")

    base_counts = baseline.get("counts", {})
    fresh_counts = fresh.get("counts", {})
    for name in ("exact_output", "exact_total_output", "heartbeats"):
        if name in base_counts and name in fresh_counts:
            if base_counts[name] != fresh_counts[name]:
                failures.append(
                    f"obs: {name} changed {base_counts[name]} -> "
                    f"{fresh_counts[name]} (deterministic; this is a "
                    "semantics change)"
                )
    return failures


def check_soak(baseline: dict, fresh: dict) -> list[str]:
    """Failure messages for the bounded-memory soak snapshot.

    * the fresh run must be memory-flat on both incremental lanes
      (streaming EXACT counts and the PROB+EWMA engine path) — the
      source refactor's hard guarantee that live memory is bounded by
      the window/budget, never by stream length, checked strictly;
    * the deterministic counts must match the committed baseline
      exactly — but only when the fresh soak ran at the baseline's own
      tick budget (counts are a function of the tick count, so a
      ``--soak-ticks`` shortened rebuild checks flatness only).
    """
    failures: list[str] = []
    if not fresh.get("flat_memory", False):
        for line in fresh.get("mismatches", []):
            failures.append(f"soak: {line}")

    base_params = baseline.get("parameters", {})
    fresh_params = fresh.get("parameters", {})
    same_scale = all(
        base_params.get(name) == fresh_params.get(name)
        for name in ("ticks", "policy_ticks", "window", "domain", "skew", "seed")
    )
    if same_scale:
        base_counts = baseline.get("counts", {})
        fresh_counts = fresh.get("counts", {})
        for name in ("exact_output", "exact_total_output", "policy_output"):
            if name in base_counts and name in fresh_counts:
                if base_counts[name] != fresh_counts[name]:
                    failures.append(
                        f"soak: {name} changed {base_counts[name]} -> "
                        f"{fresh_counts[name]} (deterministic; this is a "
                        "semantics change)"
                    )
    return failures


def format_comparison(baseline: dict, fresh: dict) -> str:
    """Side-by-side table of the gated quantities."""
    lines = [
        f"{'policy':<7} {'base kt/s':>10} {'fresh kt/s':>11} {'delta':>8} "
        f"{'base out':>9} {'fresh out':>10}",
        "-" * 60,
    ]
    fresh_policies = {entry["policy"]: entry for entry in fresh.get("policies", [])}
    for base in baseline.get("policies", []):
        current = fresh_policies.get(base["policy"])
        if current is None:
            lines.append(f"{base['policy']:<7} {'(missing from fresh snapshot)':>50}")
            continue
        delta = 100 * (
            current["ktuples_per_second"] / base["ktuples_per_second"] - 1
        )
        lines.append(
            f"{base['policy']:<7} {base['ktuples_per_second']:>10.2f} "
            f"{current['ktuples_per_second']:>11.2f} {delta:>+7.1f}% "
            f"{base['output_count']:>9} {current['output_count']:>10}"
        )
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline", default=str(REPO_ROOT / "BENCH_engine.json"),
        help="committed snapshot to gate against",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="max fractional throughput drop (default 0.20)",
    )
    parser.add_argument(
        "--overhead-slack", type=float, default=DEFAULT_OVERHEAD_SLACK,
        dest="overhead_slack",
        help="max overhead growth in percentage points (default 20)",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="timing repeats (default: the baseline's own setting)",
    )
    parser.add_argument(
        "--runtime-baseline", default=str(REPO_ROOT / "BENCH_runtime.json"),
        dest="runtime_baseline",
        help="committed parallel-runtime snapshot (skipped if absent)",
    )
    parser.add_argument(
        "--max-slowdown", type=float, default=DEFAULT_MAX_SLOWDOWN,
        dest="max_slowdown",
        help="max parallel/serial wall-clock ratio (default 5.0)",
    )
    parser.add_argument(
        "--skip-runtime", action="store_true",
        help="gate the engine snapshot only",
    )
    parser.add_argument(
        "--shard-baseline", default=str(REPO_ROOT / "BENCH_shard.json"),
        dest="shard_baseline",
        help="committed sharded-execution snapshot (skipped if absent)",
    )
    parser.add_argument(
        "--max-shard-slowdown", type=float, default=DEFAULT_MAX_SHARD_SLOWDOWN,
        dest="max_shard_slowdown",
        help="max sharded/unsharded wall-clock ratio (default 25.0)",
    )
    parser.add_argument(
        "--skip-shard", action="store_true",
        help="skip the sharded-execution identity gate",
    )
    parser.add_argument(
        "--chaos-baseline", default=str(REPO_ROOT / "BENCH_chaos.json"),
        dest="chaos_baseline",
        help="committed chaos-recovery snapshot (skipped if absent)",
    )
    parser.add_argument(
        "--skip-chaos", action="store_true",
        help="skip the fault-injected recovery identity gate",
    )
    parser.add_argument(
        "--batch-baseline", default=str(REPO_ROOT / "BENCH_batch.json"),
        dest="batch_baseline",
        help="committed columnar-batch snapshot (skipped if absent)",
    )
    parser.add_argument(
        "--min-batch-speedup", type=float, default=DEFAULT_MIN_BATCH_SPEEDUP,
        dest="min_batch_speedup",
        help="min batched/per-tuple EXACT throughput ratio (default 1.5)",
    )
    parser.add_argument(
        "--skip-batch", action="store_true",
        help="skip the columnar-batch identity/speedup gate",
    )
    parser.add_argument(
        "--policy-baseline", default=str(REPO_ROOT / "BENCH_policy.json"),
        dest="policy_baseline",
        help="committed policy-lane snapshot (skipped if absent)",
    )
    parser.add_argument(
        "--min-policy-speedup", type=float,
        default=DEFAULT_MIN_POLICY_SPEEDUP, dest="min_policy_speedup",
        help="min batched/per-tuple PROB and LIFE throughput ratio "
             "(default 2.0)",
    )
    parser.add_argument(
        "--skip-policy", action="store_true",
        help="skip the policy-lane identity/speedup gate",
    )
    parser.add_argument(
        "--obs-baseline", default=str(REPO_ROOT / "BENCH_obs.json"),
        dest="obs_baseline",
        help="committed telemetry-plane snapshot (skipped if absent)",
    )
    parser.add_argument(
        "--skip-obs", action="store_true",
        help="skip the telemetry-plane identity/overhead gate",
    )
    parser.add_argument(
        "--soak-baseline", default=str(REPO_ROOT / "BENCH_soak.json"),
        dest="soak_baseline",
        help="committed bounded-memory soak snapshot (skipped if absent)",
    )
    parser.add_argument(
        "--soak-ticks", type=int, default=None, dest="soak_ticks",
        help="EXACT-lane soak rebuild length (default: the baseline's "
             "own; a shorter rebuild checks memory flatness only)",
    )
    parser.add_argument(
        "--soak-policy-ticks", type=int, default=None,
        dest="soak_policy_ticks",
        help="policy-path soak rebuild length (default: the baseline's own)",
    )
    parser.add_argument(
        "--skip-soak", action="store_true",
        help="skip the bounded-memory soak gate",
    )
    args = parser.parse_args()

    baseline_path = Path(args.baseline)
    try:
        baseline = json.loads(baseline_path.read_text())
    except OSError as error:
        print(f"cannot read baseline {baseline_path}: {error}", file=sys.stderr)
        print("generate one with `make bench-smoke` first", file=sys.stderr)
        return 2
    except json.JSONDecodeError as error:
        print(f"baseline {baseline_path} is not valid JSON: {error}", file=sys.stderr)
        return 2

    scale = baseline.get("scale", "ci")
    seed = baseline.get("workload", {}).get("seed", 0)
    repeats = (
        args.repeats
        if args.repeats is not None
        else baseline.get("parameters", {}).get("repeats", 3)
    )
    print(f"bench-gate: rebuilding snapshot (scale={scale}, repeats={repeats}) ...")
    fresh = build_snapshot(scale, repeats, seed)

    print(format_comparison(baseline, fresh))
    failures = compare_snapshots(
        baseline, fresh,
        tolerance=args.tolerance, overhead_slack=args.overhead_slack,
    )

    runtime_path = Path(args.runtime_baseline)
    if not args.skip_runtime and runtime_path.exists():
        try:
            runtime_baseline = json.loads(runtime_path.read_text())
        except json.JSONDecodeError as error:
            print(f"runtime baseline {runtime_path} is not valid JSON: "
                  f"{error}", file=sys.stderr)
            return 2
        workers = runtime_baseline.get("parameters", {}).get("workers", 2)
        runtime_scale = runtime_baseline.get("scale", "ci")
        print(f"\nbench-gate: rebuilding runtime snapshot "
              f"(scale={runtime_scale}, workers={workers}) ...")
        runtime_fresh = build_runtime_snapshot(runtime_scale, workers)
        print(f"  serial {runtime_fresh['serial_seconds']:.3f}s, "
              f"parallel {runtime_fresh['parallel_seconds']:.3f}s "
              f"(speedup {runtime_fresh['speedup']:.2f}x), "
              f"outputs_match={runtime_fresh['outputs_match']}")
        failures.extend(check_runtime(
            runtime_baseline, runtime_fresh, max_slowdown=args.max_slowdown
        ))

    shard_path = Path(args.shard_baseline)
    if not args.skip_shard and shard_path.exists():
        try:
            shard_baseline = json.loads(shard_path.read_text())
        except json.JSONDecodeError as error:
            print(f"shard baseline {shard_path} is not valid JSON: "
                  f"{error}", file=sys.stderr)
            return 2
        shard_params = shard_baseline.get("parameters", {})
        shards = shard_params.get("shards", 4)
        shard_workers = shard_params.get("workers", 2)
        shard_scale = shard_baseline.get("scale", "ci")
        print(f"\nbench-gate: rebuilding shard snapshot "
              f"(scale={shard_scale}, shards={shards}, "
              f"workers={shard_workers}) ...")
        shard_fresh = build_shard_snapshot(shard_scale, shards, shard_workers)
        print(f"  unsharded {shard_fresh['unsharded_seconds']:.3f}s, "
              f"sharded {shard_fresh['parallel_seconds']:.3f}s "
              f"({shard_fresh['speedup_vs_unsharded']:.2f}x), "
              f"exact_identical={shard_fresh['exact_identical']}")
        failures.extend(check_shard(
            shard_baseline, shard_fresh,
            max_slowdown=args.max_shard_slowdown,
        ))

    chaos_path = Path(args.chaos_baseline)
    if not args.skip_chaos and chaos_path.exists():
        try:
            chaos_baseline = json.loads(chaos_path.read_text())
        except json.JSONDecodeError as error:
            print(f"chaos baseline {chaos_path} is not valid JSON: "
                  f"{error}", file=sys.stderr)
            return 2
        chaos_params = chaos_baseline.get("parameters", {})
        chaos_shards = chaos_params.get("shards", 3)
        chaos_workers = chaos_params.get("workers", 2)
        chaos_scale = chaos_baseline.get("scale", "ci")
        print(f"\nbench-gate: rebuilding chaos snapshot "
              f"(scale={chaos_scale}, shards={chaos_shards}, "
              f"workers={chaos_workers}) ...")
        chaos_fresh = build_chaos_snapshot(
            chaos_scale, chaos_shards, chaos_workers
        )
        print(f"  recovery_identical={chaos_fresh['recovery_identical']}, "
              f"degraded {chaos_fresh['counts']['degraded_output']} + "
              f"lost {chaos_fresh['counts']['lost_output']} vs exact "
              f"{chaos_fresh['counts']['exact_output']}")
        failures.extend(check_chaos(chaos_baseline, chaos_fresh))

    batch_path = Path(args.batch_baseline)
    if not args.skip_batch and batch_path.exists():
        try:
            batch_baseline = json.loads(batch_path.read_text())
        except json.JSONDecodeError as error:
            print(f"batch baseline {batch_path} is not valid JSON: "
                  f"{error}", file=sys.stderr)
            return 2
        batch_params = batch_baseline.get("parameters", {})
        batch_repeats = (
            args.repeats
            if args.repeats is not None
            else batch_params.get("repeats", 3)
        )
        batch_scale = batch_baseline.get("scale", "ci")
        batch_seed = batch_baseline.get("workload", {}).get("seed", 0)
        print(f"\nbench-gate: rebuilding batch snapshot "
              f"(scale={batch_scale}, repeats={batch_repeats}) ...")
        batch_fresh = build_batch_snapshot(
            batch_scale, batch_repeats, batch_seed
        )
        print(f"  per-tuple {batch_fresh['serial_ktuples_per_second']:.2f} "
              f"k-tuples/s, batched "
              f"{batch_fresh['batched_ktuples_per_second']:.2f} k-tuples/s "
              f"({batch_fresh['speedup']:.2f}x), "
              f"batched_identical={batch_fresh['batched_identical']}")
        failures.extend(check_batch(
            batch_baseline, batch_fresh,
            min_speedup=args.min_batch_speedup,
        ))

    policy_path = Path(args.policy_baseline)
    if not args.skip_policy and policy_path.exists():
        try:
            policy_baseline = json.loads(policy_path.read_text())
        except json.JSONDecodeError as error:
            print(f"policy baseline {policy_path} is not valid JSON: "
                  f"{error}", file=sys.stderr)
            return 2
        policy_params = policy_baseline.get("parameters", {})
        policy_repeats = (
            args.repeats
            if args.repeats is not None
            else policy_params.get("repeats", 3)
        )
        policy_scale = policy_baseline.get("scale", "ci")
        policy_seed = policy_baseline.get("workload", {}).get("seed", 0)
        print(f"\nbench-gate: rebuilding policy snapshot "
              f"(scale={policy_scale}, repeats={policy_repeats}) ...")
        policy_fresh = build_policy_snapshot(
            policy_scale, policy_repeats, policy_seed
        )
        for entry in policy_fresh["policies"]:
            print(f"  {entry['policy']:<5} per-tuple "
                  f"{entry['serial_ktuples_per_second']:.2f} k-tuples/s, "
                  f"batched {entry['batched_ktuples_per_second']:.2f} "
                  f"k-tuples/s ({entry['speedup']:.2f}x)")
        print(f"  batched_identical={policy_fresh['batched_identical']}")
        failures.extend(check_policy(
            policy_baseline, policy_fresh,
            min_speedup=args.min_policy_speedup,
        ))

    obs_path = Path(args.obs_baseline)
    if not args.skip_obs and obs_path.exists():
        try:
            obs_baseline = json.loads(obs_path.read_text())
        except json.JSONDecodeError as error:
            print(f"obs baseline {obs_path} is not valid JSON: "
                  f"{error}", file=sys.stderr)
            return 2
        obs_params = obs_baseline.get("parameters", {})
        obs_shards = obs_params.get("shards", 4)
        obs_workers = obs_params.get("workers", 2)
        obs_rounds = obs_params.get("rounds", 5)
        obs_limit = obs_params.get("limit_pct", 5.0)
        obs_scale = obs_baseline.get("scale", "ci")
        print(f"\nbench-gate: rebuilding obs snapshot "
              f"(scale={obs_scale}, shards={obs_shards}, "
              f"rounds={obs_rounds}) ...")
        obs_fresh = build_obs_snapshot(
            obs_scale, obs_shards, obs_workers, obs_rounds, obs_limit,
            REPO_ROOT / "benchmarks" / "results" / "timeline.json",
        )
        print(f"  overhead {obs_fresh['overhead_pct']:+.2f}% "
              f"(budget {obs_limit:.1f}%), "
              f"heartbeats {obs_fresh['counts']['heartbeats']}, "
              f"telemetry_identical={obs_fresh['telemetry_identical']}")
        failures.extend(check_obs(obs_baseline, obs_fresh))

    soak_path = Path(args.soak_baseline)
    if not args.skip_soak and soak_path.exists():
        try:
            soak_baseline = json.loads(soak_path.read_text())
        except json.JSONDecodeError as error:
            print(f"soak baseline {soak_path} is not valid JSON: "
                  f"{error}", file=sys.stderr)
            return 2
        soak_params = soak_baseline.get("parameters", {})
        soak_ticks = (
            args.soak_ticks
            if args.soak_ticks is not None
            else soak_params.get("ticks", 2_000_000)
        )
        soak_policy_ticks = (
            args.soak_policy_ticks
            if args.soak_policy_ticks is not None
            else soak_params.get("policy_ticks", 200_000)
        )
        print(f"\nbench-gate: rebuilding soak snapshot "
              f"(ticks={soak_ticks:,}, policy_ticks={soak_policy_ticks:,}, "
              "tracemalloc on) ...")
        soak_fresh = build_soak_snapshot(
            soak_ticks, soak_policy_ticks,
            slack_pct=soak_params.get("slack_pct", 5.0),
            slack_kib=soak_params.get("slack_kib", 64.0),
        )
        print(f"  exact {soak_fresh['exact']['memory_kib'][0]:.1f} -> "
              f"{soak_fresh['exact']['memory_kib'][-1]:.1f} KiB, "
              f"policy {soak_fresh['policy']['memory_kib'][0]:.1f} -> "
              f"{soak_fresh['policy']['memory_kib'][-1]:.1f} KiB, "
              f"flat_memory={soak_fresh['flat_memory']}")
        if soak_ticks != soak_params.get("ticks"):
            print("  (shortened rebuild: checking memory flatness only, "
                  "not baseline counts)")
        failures.extend(check_soak(soak_baseline, soak_fresh))

    if failures:
        print(f"\nbench-gate FAILED ({len(failures)} issue(s)):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nbench-gate OK (tolerance {100 * args.tolerance:.0f}%, "
          f"overhead slack {args.overhead_slack:.0f} points)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
