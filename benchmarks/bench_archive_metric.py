"""Archive-metric experiment (A1): ArM across policies and memory sizes.

Extension of the paper's future work (Section 6): measures the
Archive-metric of each policy and the archive refinement cost, and
benchmarks the ArM computation kernel.
"""

import pytest

from _bench_utils import emit_figure, emit_table, run_once
from repro.core.archive import refine_from_archive
from repro.core.metrics.archive import archive_metric
from repro.experiments import format_table, run_algorithm
from repro.experiments.config import DEFAULT_DOMAIN, even_memory
from repro.experiments.figures import arm_study
from repro.streams import zipf_pair


@pytest.fixture(scope="module")
def table(scale):
    data = arm_study(scale)
    emit_table("arm_study", data)
    return data


def test_arm_study(benchmark, table, scale):
    pair = zipf_pair(scale.stream_length, DEFAULT_DOMAIN, 1.0, seed=0)
    window = scale.window
    result = run_algorithm(
        "PROB", pair, window, even_memory(window, 0.5), track_survival=True
    )
    run_once(
        benchmark,
        archive_metric,
        pair,
        result.r_departures,
        result.s_departures,
        window,
        count_from=2 * window,
    )

    columns = table.columns
    for name in ("RAND", "PROB", "LIFE", "ARM"):
        arm_col = columns.index(f"{name} ArM")
        arms = [row[arm_col] for row in table.rows]
        # ArM falls as memory grows (more tuples live out their windows).
        assert arms[0] >= arms[-1]
    # Semantic shedding leaves fewer incomplete tuples than RAND at the
    # mid-range budgets.
    mid = len(table.rows) // 2
    rand_arm = table.rows[mid][columns.index("RAND ArM")]
    prob_arm = table.rows[mid][columns.index("PROB ArM")]
    assert prob_arm < rand_arm


def test_refinement_work(benchmark, scale):
    """Night-mode refinement repays exactly the missing output."""
    pair = zipf_pair(scale.stream_length, DEFAULT_DOMAIN, 1.0, seed=1)
    window = scale.window
    day = run_algorithm(
        "PROB", pair, window, even_memory(window, 0.5),
        materialize=True, track_survival=True,
    )
    report = run_once(benchmark, refine_from_archive, pair, day)

    from repro.core.exact import run_exact

    exact = run_exact(pair, window).output_count
    assert day.output_count + report.missing_count == exact
    assert report.archive_reads >= report.missing_count
