"""Figure 7: the weather workload — output vs. memory.

Uses the synthetic substitute for the Hahn/Warren/London cloud dataset
(see DESIGN.md section 5); like the paper, OPT is omitted at this scale.
"""

import pytest

from _bench_utils import emit_figure, emit_table, run_once
from repro.experiments import format_figure, run_algorithm
from repro.experiments.config import even_memory
from repro.experiments.figures import figure7
from repro.streams import weather_pair


@pytest.fixture(scope="module")
def figure(scale):
    data = figure7(scale)
    emit_figure("figure7", data)
    return data


def test_figure7(benchmark, figure, scale):
    pair = weather_pair(min(scale.weather_length, 20_000), seed=0)
    window = scale.weather_window
    memory = even_memory(window, 0.5)
    run_once(
        benchmark, run_algorithm, "PROB", pair, window, memory,
        warmup=scale.weather_warmup,
    )

    rand = figure.series_by_label("RAND").y
    prob = figure.series_by_label("PROB").y
    probv = figure.series_by_label("PROBV").y
    exact = figure.series_by_label("EXACT").y
    memories = figure.params["memories"]

    # PROB beats RAND throughout; PROB == PROBV (similar distributions).
    assert all(p > r for p, r in zip(prob, rand))
    for a, b in zip(prob, probv):
        assert abs(a - b) / max(a, 1) < 0.05
    # The paper: >90% of EXACT with only 50% of the memory (M = w).
    index = memories.index(even_memory(scale.weather_window, 1.0))
    assert prob[index] / exact[index] > 0.7
    assert all(p <= e for p, e in zip(prob, exact))
