"""Engine-kernel throughput: tuples/second per policy.

Not a paper figure — an implementation benchmark guarding against
regressions in the per-tick hot path of each policy.
"""

import pytest

from _bench_utils import emit_figure, emit_table, run_once
from repro.experiments import estimators_for, format_table, run_algorithm
from repro.experiments.config import DEFAULT_DOMAIN, even_memory
from repro.experiments.figures import TableData
from repro.streams import zipf_pair

POLICIES = ("EXACT", "RAND", "PROB", "PROBV", "LIFE", "ARM")


@pytest.fixture(scope="module")
def workload(scale):
    length = max(scale.stream_length, 2000)
    pair = zipf_pair(length, DEFAULT_DOMAIN, 1.0, seed=0)
    return pair, max(scale.window, 100)


@pytest.fixture(scope="module")
def throughput_table(workload):
    import time

    pair, window = workload
    memory = even_memory(window, 0.5)
    estimators = estimators_for(pair)
    rows = []
    for name in POLICIES:
        start = time.perf_counter()
        result = run_algorithm(name, pair, window, memory, estimators=estimators)
        elapsed = time.perf_counter() - start
        rows.append(
            [name, result.output_count, round(len(pair) / elapsed / 1000, 1)]
        )
    data = TableData(
        table_id="engine_throughput",
        title=f"Engine throughput, n={len(pair)}, w={window}, M={memory}",
        columns=["policy", "output", "k-tuples/s per stream"],
        rows=rows,
        expectation="All policies sustain the same order of magnitude.",
    )
    emit_table("engine_throughput", data)
    return data


@pytest.mark.parametrize("name", POLICIES)
def test_policy_throughput(benchmark, throughput_table, workload, name):
    pair, window = workload
    memory = even_memory(window, 0.5)
    estimators = estimators_for(pair)
    result = run_once(
        benchmark, run_algorithm, name, pair, window, memory, estimators=estimators
    )
    assert result.output_count >= 0
