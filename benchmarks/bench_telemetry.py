"""Write BENCH_obs.json: telemetry-plane overhead and identity gate.

The telemetry plane (see docs/architecture.md) must be effectively
free when armed and invisible when not: ``telemetry=True`` streams
spans and heartbeats through JSONL spools without changing any run
result, and the wall-clock cost on a ci-scale EXACT sharded run must
stay within a small budget.  This benchmark measures both:

* **identity** — the telemetry-on run must produce exactly the same
  output count, total output, and drop ledger as the telemetry-off run
  of the same spec (strict, no tolerance);
* **determinism** — the merged timeline's heartbeat count is a pure
  function of the spec (ticks / heartbeat_every per shard), so it is
  recorded and gated exactly;
* **overhead** — telemetry-on vs. telemetry-off CPU time, measured
  serially (workers=1) with interleaved rounds and min-over-rounds on
  each side, so pool startup, scheduler noise, and co-tenant load stay
  out of the ratio (the only telemetry cost CPU time misses is the
  fsync wait, microseconds per heartbeat batch).  The default budget
  is 5%; a pass over budget re-times up to two fresh passes (each with
  its own minima, so one lucky off-round cannot poison the ratio for
  good) and the best pass is reported.

A pooled, fault-injected leg (kill + retry + checkpoint restore at
``--shards`` / ``--workers``) also runs to exercise the full plane and
writes its merged timeline to ``benchmarks/results/timeline.json`` as
Chrome trace-event JSON — the artifact CI uploads.  Its wall-clock is
advisory; the timeline must contain the killed attempt, the retry, and
the checkpoint-restore span.

Run:  python benchmarks/bench_telemetry.py [--scale ci] [--shards 4]
          [--workers 2] [--rounds 5] [--limit 5.0] [--out BENCH_obs.json]
Or:   make bench-obs
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without `make install`
    sys.path.insert(0, str(REPO_ROOT / "src"))

from dataclasses import replace

from repro.api import RunSpec, build_pair, run
from repro.experiments.config import DEFAULT_DOMAIN, SCALES, even_memory
from repro.obs import span_summary, to_chrome_trace
from repro.runtime import Fault, FaultPlan

SEED = 0
#: Overhead-leg heartbeat cadence.  At ci scale a tick is ~10 us of
#: engine work and a heartbeat ~30 us of emit work, so the cadence —
#: not the plane — sets the cost; 2048 models "sampled, not saturated"
#: (even at this stride the run emits ~200 beats/s of wall time, far
#: denser than a real fleet poll).
HEARTBEAT_EVERY = 2048
#: The faulted demo leg beats densely so the timeline artifact is rich.
DEMO_HEARTBEAT_EVERY = 16
CHECKPOINT_EVERY = 32
DEFAULT_LIMIT_PCT = 5.0
#: Re-time this many extra passes before declaring the budget blown.
MAX_TIMING_PASSES = 3


def _fingerprint(result) -> dict:
    """The identity-gated view of one run."""
    return {
        "output": result.output_count,
        "total_output": result.total_output_count,
        "drops": result.drop_breakdown().as_dict(),
    }


def build_obs_snapshot(
    scale_name: str,
    shards: int,
    workers: int,
    rounds: int,
    limit_pct: float,
    timeline_out: Path,
) -> dict:
    scale = SCALES[scale_name]
    # The overhead ratio needs per-tick costs to dominate both the fixed
    # plumbing (tempdir, spool files, fsync, timeline merge — ~5 ms per
    # run) and the timer's per-round noise (a loaded shared runner
    # jitters CPU time by ~10 ms per sample), so the timing leg runs
    # much longer streams than the scale's default: at ~600 ms per run
    # the ~2% true overhead separates cleanly from the jitter.
    length = max(32 * scale.stream_length, 64000)
    window = max(scale.window, 100)
    memory = even_memory(window, 0.5)

    spec_off = RunSpec(
        algorithm="EXACT", window=window, memory=memory,
        length=length, domain=DEFAULT_DOMAIN, seed=SEED, shards=shards,
    )
    spec_on = replace(
        spec_off, telemetry=True, heartbeat_every=HEARTBEAT_EVERY,
    )
    pair = build_pair(spec_off)
    mismatches = []

    # -- identity + heartbeat determinism (one pass each) --------------
    result_off = run(spec_off, pair=pair, workers=1)
    result_on = run(spec_on, pair=pair, workers=1)
    if _fingerprint(result_on) != _fingerprint(result_off):
        mismatches.append(
            f"telemetry-on run differs from telemetry-off: "
            f"{_fingerprint(result_on)} != {_fingerprint(result_off)}"
        )
    summary = span_summary(result_on.timeline or [])
    heartbeats = summary.get("kinds", {}).get("heartbeat", 0)

    # -- overhead: interleaved rounds, min CPU time per side -----------
    # The off/on pairs alternate so thermal and cache drift hit both
    # sides alike; min-over-rounds discards load spikes, and CPU time
    # ignores the co-tenant scheduler noise a shared runner carries.
    # GC is off during the rounds (as timeit does): telemetry's higher
    # allocation rate would otherwise trigger collections that scan
    # whatever unrelated heap the process carries — under the full
    # regression gate that scan alone read as a +5% "overhead".
    # Each retry pass keeps its own pair of minima and the best pass
    # wins: a cumulative min would let one lucky fast off-round poison
    # every subsequent pass with an inflated ratio.
    # Both timing legs carry a metrics registry: an uninstrumented
    # EXACT shard now takes the columnar count lane (several times
    # faster than the per-tick kernel path telemetry's heartbeat hooks
    # require), so a bare off-leg would measure the lane difference,
    # not telemetry.  Attaching metrics to both sides pins them to the
    # same per-tick path and the ratio isolates the telemetry plane
    # again.
    timing_off = replace(spec_off, metrics=True)
    timing_on = replace(spec_on, metrics=True)
    best_off = best_on = None
    overhead_pct = None
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(MAX_TIMING_PASSES):
            pass_off = pass_on = None
            for _ in range(rounds):
                for name, spec in (("off", timing_off), ("on", timing_on)):
                    start = time.process_time()
                    run(spec, pair=pair, workers=1)
                    elapsed = time.process_time() - start
                    if name == "off":
                        pass_off = elapsed if pass_off is None else min(pass_off, elapsed)
                    else:
                        pass_on = elapsed if pass_on is None else min(pass_on, elapsed)
            pass_pct = 100.0 * (pass_on / pass_off - 1.0)
            if overhead_pct is None or pass_pct < overhead_pct:
                overhead_pct = pass_pct
                best_off, best_on = pass_off, pass_on
            if overhead_pct <= limit_pct:
                break
    finally:
        if gc_was_enabled:
            gc.enable()
    overhead_ok = overhead_pct <= limit_pct
    if not overhead_ok:
        mismatches.append(
            f"telemetry overhead {overhead_pct:+.2f}% exceeds the "
            f"{limit_pct:.1f}% budget (off {best_off:.4f}s, on {best_on:.4f}s)"
        )

    # -- faulted pooled leg: full plane + the CI timeline artifact -----
    kill_tick = length // 3
    plan = FaultPlan(
        (Fault("kill", cell=shards - 1, tick=kill_tick, attempts=1),)
    )
    faulted_spec = replace(
        spec_on, max_retries=2, checkpoint_every=CHECKPOINT_EVERY,
        heartbeat_every=DEMO_HEARTBEAT_EVERY,
    )
    faulted = run(faulted_spec, pair=pair, workers=workers, fault_plan=plan)
    if _fingerprint(faulted) != _fingerprint(result_off):
        mismatches.append(
            f"faulted telemetry run differs from fault-free: "
            f"{_fingerprint(faulted)} != {_fingerprint(result_off)}"
        )
    faulted_summary = span_summary(faulted.timeline or [])
    faulted_kinds = faulted_summary.get("kinds", {})
    for kind in ("fault", "retry", "checkpoint_restore"):
        if not faulted_kinds.get(kind):
            mismatches.append(
                f"faulted timeline is missing its {kind!r} span "
                f"(kinds: {sorted(faulted_kinds)})"
            )

    timeline_out.parent.mkdir(parents=True, exist_ok=True)
    timeline_out.write_text(
        json.dumps(to_chrome_trace(faulted.timeline or [])) + "\n"
    )

    return {
        "benchmark": "telemetry_overhead",
        "scale": scale_name,
        "workload": {
            "generator": "zipf",
            "length": length,
            "domain": DEFAULT_DOMAIN,
            "skew": 1.0,
            "seed": SEED,
        },
        "parameters": {
            "window": window,
            "memory": memory,
            "shards": shards,
            "workers": workers,
            "rounds": rounds,
            "heartbeat_every": HEARTBEAT_EVERY,
            "demo_heartbeat_every": DEMO_HEARTBEAT_EVERY,
            "checkpoint_every": CHECKPOINT_EVERY,
            "killed_cell": shards - 1,
            "killed_tick": kill_tick,
            "limit_pct": limit_pct,
            "cpu_count": os.cpu_count(),
        },
        "python": sys.version.split()[0],
        "cpu_seconds": {
            "off_min": round(best_off, 4),
            "on_min": round(best_on, 4),
        },
        "overhead_pct": round(overhead_pct, 2),
        "overhead_ok": overhead_ok,
        "telemetry_identical": not mismatches,
        "mismatches": mismatches,
        "counts": {
            "exact_output": result_off.output_count,
            "exact_total_output": result_off.total_output_count,
            "heartbeats": heartbeats,
            "span_events": summary.get("events", 0),
            "faulted_retries": faulted_summary.get("retries", 0),
        },
        "timeline_artifact": str(timeline_out.relative_to(REPO_ROOT))
        if timeline_out.is_relative_to(REPO_ROOT) else str(timeline_out),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="ci", choices=sorted(SCALES))
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--rounds", type=int, default=5,
        help="interleaved off/on timing rounds (min is kept)",
    )
    parser.add_argument(
        "--limit", type=float, default=DEFAULT_LIMIT_PCT,
        help="max telemetry overhead in percent (default 5.0)",
    )
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_obs.json"),
        help="where to write the snapshot",
    )
    parser.add_argument(
        "--timeline-out",
        default=str(REPO_ROOT / "benchmarks" / "results" / "timeline.json"),
        dest="timeline_out",
        help="where to write the faulted run's Chrome trace JSON",
    )
    args = parser.parse_args()

    snapshot = build_obs_snapshot(
        args.scale, args.shards, args.workers, args.rounds, args.limit,
        Path(args.timeline_out),
    )
    path = Path(args.out)
    path.write_text(json.dumps(snapshot, indent=2) + "\n")

    seconds = snapshot["cpu_seconds"]
    print(f"telemetry overhead @ scale={args.scale} "
          f"(shards={args.shards}, rounds={args.rounds})")
    print(f"  off  {seconds['off_min']:>8.4f}s cpu (min over rounds)")
    print(f"  on   {seconds['on_min']:>8.4f}s cpu "
          f"({snapshot['overhead_pct']:+.2f}%, budget {args.limit:.1f}%)")
    print(f"  heartbeats {snapshot['counts']['heartbeats']}, "
          f"span events {snapshot['counts']['span_events']}, "
          f"faulted retries {snapshot['counts']['faulted_retries']}")
    if snapshot["telemetry_identical"]:
        print("  identity: telemetry-on == telemetry-off; faulted run "
              "recovers bit-identically with fault/retry/restore spans")
    else:
        print(f"  TELEMETRY VIOLATION ({len(snapshot['mismatches'])} issue(s)):")
        for line in snapshot["mismatches"]:
            print(f"    - {line}")
    print(f"timeline artifact: {snapshot['timeline_artifact']}")
    print(f"written to {path}")
    return 0 if snapshot["telemetry_identical"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
