"""Shared fixtures for the benchmark suite.

Every benchmark module regenerates one figure or table of the paper at
the scale selected by ``REPRO_SCALE`` (``ci`` / ``default`` / ``paper``;
see ``repro.experiments.config``), writes the rendered rows to
``benchmarks/results/<id>.txt``, prints them (visible with ``pytest -s``
or on failure), asserts the paper's qualitative shape, and times a
representative kernel with pytest-benchmark.
"""

from __future__ import annotations

import pytest

from repro.experiments import current_scale


@pytest.fixture(scope="session")
def scale():
    """The experiment scale for this benchmark session."""
    return current_scale()
