"""Write BENCH_engine.json: an engine-throughput snapshot at a fixed scale.

Runs the fast-CPU engine once per policy on the ``ci``-scale workload
(the same kernel ``bench_engine_throughput.py`` times under
pytest-benchmark), records throughput with instrumentation disabled,
repeats the run with a :class:`~repro.obs.MetricsRegistry` attached and
again with a :class:`~repro.obs.Tracer` to measure both observability
overheads, and dumps everything — including a trimmed metrics snapshot
of the PROB run — as one JSON document.

Overheads are same-lane comparisons: the metrics overhead compares two
fast-loop runs, and the trace overhead compares the traced run against
an untraced run *forced onto the same general per-tick loop*
(``force_general=True``) — a tracer disables the fast loop, so
comparing against the fast-loop time would report the lane difference
(hundreds of percent) rather than the cost of tracing.

Since the source refactor, ``run(pair)`` is
``run_stream(PairSource(pair))`` routed to the historical fast-path
loops, so these timings measure the source-era hot path and stay
comparable with pre-refactor baselines.  Before each policy is timed,
the snapshot asserts that the *incremental* lane (the one unbounded
sources take) reproduces the fast path bit-for-bit on the same
workload — output, total, and drop ledger.

The committed ``BENCH_engine.json`` at the repository root is the
reference point: regenerate it with ``make bench-smoke`` and diff the
throughput/overhead numbers when touching the engine hot path;
``make bench-gate`` (see ``benchmarks/regression.py``) does the diff
automatically with tolerance bands.

Run:  python benchmarks/snapshot.py [--scale ci] [--out BENCH_engine.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without `make install`
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments import estimators_for, run_algorithm
from repro.experiments.config import DEFAULT_DOMAIN, SCALES, even_memory
from repro.obs import MetricsRegistry, RingBufferSink, Tracer
from repro.streams import zipf_pair
from repro.streams.sources import PairSource

POLICIES = ("EXACT", "RAND", "PROB", "PROBV", "LIFE", "ARM")


def _interleaved_best(repeats: int, variants):
    """Best elapsed seconds (and last result) per variant, interleaved.

    ``variants`` maps a name to a zero-argument callable.  Each repeat
    round runs every variant once, back to back, before the next round
    starts; the per-variant minimum is taken across rounds.  Interleaving
    matters on shared/noisy machines: a load spike during round *k* slows
    every variant's round-*k* sample alike, so min-over-rounds removes it
    from all of them instead of inflating whichever variant happened to
    own that wall-clock slice.  Overhead percentages computed from these
    minima are differences of same-condition bests, not of runs taken
    minutes apart.
    """
    best = {name: float("inf") for name in variants}
    results = {name: None for name in variants}
    for _ in range(repeats):
        for name, func in variants.items():
            start = time.perf_counter()
            results[name] = func()
            best[name] = min(best[name], time.perf_counter() - start)
    return best, results


def _trim_snapshot(snapshot: dict) -> dict:
    """Counters, gauges, and phases only — series are too bulky to commit."""
    return {
        "counters": snapshot["counters"],
        "gauges": snapshot["gauges"],
        "phases": [
            {**entry, "seconds": round(entry["seconds"], 6)}
            for entry in snapshot["phases"]
        ],
    }


def build_snapshot(scale_name: str, repeats: int, seed: int) -> dict:
    scale = SCALES[scale_name]
    length = max(scale.stream_length, 2000)
    window = max(scale.window, 100)
    memory = even_memory(window, 0.5)
    pair = zipf_pair(length, DEFAULT_DOMAIN, 1.0, seed=seed)
    estimators = estimators_for(pair)

    policies = []
    for name in POLICIES:
        # The timed lane is run(pair) — since the source refactor that
        # is run_stream(PairSource(pair)) routed to the same fast-path
        # loops, so the committed baselines stay comparable.  Before
        # timing, pin the *incremental* lane (forced with until=) to
        # the fast path's result on this exact workload: the streaming
        # identity contract, asserted where a divergence would silently
        # skew the numbers being committed.  These two runs double as
        # the allocator/cache warmup outside the timed rounds.
        reference = run_algorithm(
            name, pair, window, memory, estimators=estimators, seed=seed
        )
        incremental = run_algorithm(
            name, pair, window, memory, estimators=estimators, seed=seed,
            source=PairSource(pair), until=length,
        )
        if (
            incremental.output_count != reference.output_count
            or incremental.total_output_count != reference.total_output_count
            or dict(incremental.drop_counts) != dict(reference.drop_counts)
        ):
            raise AssertionError(
                f"{name}: incremental source path diverged from the pair "
                f"fast path (output {incremental.output_count} vs "
                f"{reference.output_count}, total "
                f"{incremental.total_output_count} vs "
                f"{reference.total_output_count}, drops "
                f"{dict(incremental.drop_counts)} vs "
                f"{dict(reference.drop_counts)})"
            )
        best, results = _interleaved_best(repeats, {
            "plain": lambda: run_algorithm(
                name, pair, window, memory,
                estimators=estimators, seed=seed,
            ),
            "timed": lambda: run_algorithm(
                name, pair, window, memory,
                estimators=estimators, seed=seed, metrics=MetricsRegistry(),
            ),
            # A tracer forces the general per-tick loop, so comparing a
            # traced run against the *fast-loop* "plain" leg measures
            # lane difference, not tracing cost (it reported +370% for
            # EXACT).  Pin the trace comparison to the same execution
            # lane: an untraced run forced onto the general loop.
            "general": lambda: run_algorithm(
                name, pair, window, memory,
                estimators=estimators, seed=seed, force_general=True,
            ),
            "traced": lambda: run_algorithm(
                name, pair, window, memory,
                estimators=estimators, seed=seed,
                trace=Tracer(RingBufferSink(1 << 20)),
            ),
        })
        plain_seconds, timed_seconds, general_seconds, traced_seconds = (
            best["plain"], best["timed"], best["general"], best["traced"]
        )
        result, timed_result = results["plain"], results["timed"]
        entry = {
            "policy": name,
            "output_count": result.output_count,
            "ktuples_per_second": round(length / plain_seconds / 1000, 2),
            "seconds": round(plain_seconds, 4),
            "metrics_overhead_pct": round(
                100 * (timed_seconds - plain_seconds) / plain_seconds, 1
            ),
            "general_lane_ktuples_per_second": round(
                length / general_seconds / 1000, 2
            ),
            "trace_overhead_pct": round(
                100 * (traced_seconds - general_seconds) / general_seconds, 1
            ),
        }
        if name == "PROB":
            entry["metrics"] = _trim_snapshot(timed_result.metrics)
        policies.append(entry)

    return {
        "benchmark": "engine_throughput",
        "scale": scale_name,
        "workload": {
            "generator": "zipf",
            "length": length,
            "domain": DEFAULT_DOMAIN,
            "skew": 1.0,
            "seed": seed,
        },
        "parameters": {"window": window, "memory": memory, "repeats": repeats},
        "python": sys.version.split()[0],
        "policies": policies,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="ci", choices=sorted(SCALES))
    parser.add_argument("--repeats", type=int, default=7)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_engine.json"),
        help="where to write the snapshot",
    )
    args = parser.parse_args()

    snapshot = build_snapshot(args.scale, args.repeats, args.seed)
    path = Path(args.out)
    path.write_text(json.dumps(snapshot, indent=2) + "\n")

    width = max(len(p["policy"]) for p in snapshot["policies"])
    print(f"engine throughput @ scale={args.scale} "
          f"(n={snapshot['workload']['length']}, "
          f"w={snapshot['parameters']['window']}, "
          f"M={snapshot['parameters']['memory']})")
    for entry in snapshot["policies"]:
        print(f"  {entry['policy']:<{width}}  "
              f"{entry['ktuples_per_second']:>8.2f} k-tuples/s  "
              f"output={entry['output_count']:<8} "
              f"metrics overhead {entry['metrics_overhead_pct']:+.1f}%  "
              f"trace overhead {entry['trace_overhead_pct']:+.1f}%")
    print(f"written to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
