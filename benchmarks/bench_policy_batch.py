"""Write BENCH_policy.json: policy-lane throughput + strict identity.

The columnar micro-batch path now covers the shedding policies: RAND,
PROB, and LIFE runs with static probability tables take vectorized
chunk lanes (``repro.core.batched_policies``) instead of the per-tuple
hot loop.  This benchmark times the three policies both ways on the
``ci``-scale workload of ``BENCH_engine.json`` (n=2000, w=100), with
the timings interleaved per round (see ``snapshot._interleaved_best``),
and records:

* per-policy per-tuple and batched throughputs plus their ratio — the
  regression gate holds PROB and LIFE to the ``>= 2.0x`` floor the
  policy lanes exist to clear (RAND clears far more; its ratio is
  recorded but not gated, the fixed floor keeps the gate independent
  of how silly-fast the trivial policy gets);
* the part that gates strictly: whether every batched run reproduced
  the per-tuple result **bit-identically** — output count, total
  output, drop ledger, survival departures, and metrics totals —
  across RAND/PROB/LIFE, both allocation modes (PROBV/LIFEV/RANDV),
  batch sizes {1, 7, 64, whole}, and sharded runs (shards don't take
  the pair lanes, so ``batch_size`` must be invisible there).

The committed ``BENCH_policy.json`` at the repository root is the
reference point; ``make bench-gate`` rebuilds the snapshot and fails on
identity drift, deterministic-count drift, or a speedup below the
floor.

Run:  python benchmarks/bench_policy_batch.py [--scale ci] [--repeats 7]
                                              [--out BENCH_policy.json]
Or:   make bench-policy
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without `make install`
    sys.path.insert(0, str(REPO_ROOT / "src"))

from bench_batch import _check_identity  # noqa: E402 - sibling module
from snapshot import _interleaved_best  # noqa: E402 - sibling module

from repro.api import RunSpec, build_pair, run  # noqa: E402
from repro.experiments.config import DEFAULT_DOMAIN, SCALES, even_memory  # noqa: E402
from repro.streams.batches import DEFAULT_BATCH_SIZE, HAVE_NUMPY  # noqa: E402

SEED = 0
#: Batched PROB/LIFE must beat their per-tuple twins by this factor.
MIN_POLICY_SPEEDUP = 2.0
#: Policies the floor is enforced for (RAND is advisory).
ENFORCED_POLICIES = ("PROB", "LIFE")
#: Policies timed head-to-head.
TIMED_POLICIES = ("RAND", "PROB", "LIFE")
#: Every lane-covered policy spec, both allocation modes.
IDENTITY_POLICIES = ("RAND", "RANDV", "PROB", "PROBV", "LIFE", "LIFEV")
#: Chunk sizes the identity sweep crosses (plus the whole stream).
IDENTITY_BATCH_SIZES = (1, 7, 64, DEFAULT_BATCH_SIZE)


def build_policy_snapshot(scale_name: str, repeats: int, seed: int) -> dict:
    scale = SCALES[scale_name]
    length = max(scale.stream_length, 2000)
    window = max(scale.window, 100)
    memory = even_memory(window, 0.5)

    def spec(algorithm, **overrides):
        return RunSpec(
            algorithm=algorithm, window=window, memory=memory,
            length=length, domain=DEFAULT_DOMAIN, seed=seed, **overrides,
        )

    pair = build_pair(spec("EXACT"))

    mismatches: list[str] = []
    counts: dict = {}
    policies = []
    floor_failures: list[str] = []

    # -- throughput: per-tuple vs batched, interleaved per policy ------
    for name in TIMED_POLICIES:
        run(spec(name), pair=pair)  # warm up outside the timed rounds
        run(spec(name, batch_size=DEFAULT_BATCH_SIZE), pair=pair)
        best, results = _interleaved_best(repeats, {
            "serial": lambda: run(spec(name), pair=pair),
            "batched": lambda: run(
                spec(name, batch_size=DEFAULT_BATCH_SIZE), pair=pair
            ),
        })
        serial_seconds, batched_seconds = best["serial"], best["batched"]
        speedup = serial_seconds / batched_seconds
        enforced = name in ENFORCED_POLICIES
        if enforced and speedup < MIN_POLICY_SPEEDUP:
            floor_failures.append(
                f"{name}: batched speedup {speedup:.2f}x is below the "
                f"{MIN_POLICY_SPEEDUP:.1f}x floor"
            )
        baseline = results["serial"]
        _check_identity(
            mismatches, f"{name} batch={DEFAULT_BATCH_SIZE}",
            results["batched"], baseline,
        )
        counts[f"{name.lower()}_output"] = baseline.output_count
        counts[f"{name.lower()}_total_output"] = baseline.total_output_count
        policies.append({
            "policy": name,
            "serial_ktuples_per_second": round(length / serial_seconds / 1000, 2),
            "batched_ktuples_per_second": round(length / batched_seconds / 1000, 2),
            "serial_seconds": round(serial_seconds, 4),
            "batched_seconds": round(batched_seconds, 4),
            "speedup": round(speedup, 2),
            "floor_enforced": enforced,
        })

    # -- identity sweep: all lanes x chunk sizes, metrics + survival ---
    for name in IDENTITY_POLICIES:
        baseline = run(spec(name, metrics=True), pair=pair)
        for batch_size in IDENTITY_BATCH_SIZES:
            batched = run(spec(name, metrics=True, batch_size=batch_size), pair=pair)
            label = f"{name} batch={batch_size}"
            _check_identity(mismatches, label, batched, baseline, metrics=True)
            if (
                batched.r_departures != baseline.r_departures
                or batched.s_departures != baseline.s_departures
            ):
                mismatches.append(f"{label}: survival departures differ")

    # -- sharded identity: batch_size must be invisible under shards ---
    for name in ("PROB", "LIFE"):
        sharded_baseline = run(spec(name, shards=4), pair=pair)
        sharded_batched = run(spec(name, shards=4, batch_size=64), pair=pair)
        _check_identity(
            mismatches, f"{name} shards=4 batch=64",
            sharded_batched, sharded_baseline,
        )

    return {
        "benchmark": "policy_batch_throughput",
        "scale": scale_name,
        "workload": {
            "generator": "zipf",
            "length": length,
            "domain": DEFAULT_DOMAIN,
            "skew": 1.0,
            "seed": seed,
        },
        "parameters": {
            "window": window,
            "memory": memory,
            "repeats": repeats,
            "batch_size": DEFAULT_BATCH_SIZE,
            "min_policy_speedup": MIN_POLICY_SPEEDUP,
        },
        "python": sys.version.split()[0],
        "numpy": HAVE_NUMPY,
        "policies": policies,
        "batched_identical": not mismatches,
        "mismatches": mismatches,
        "floor_failures": floor_failures,
        "counts": counts,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="ci", choices=sorted(SCALES))
    parser.add_argument("--repeats", type=int, default=7)
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_policy.json"),
        help="where to write the snapshot",
    )
    args = parser.parse_args()

    snapshot = build_policy_snapshot(args.scale, args.repeats, args.seed)
    path = Path(args.out)
    path.write_text(json.dumps(snapshot, indent=2) + "\n")

    print(f"batched policy lanes @ scale={args.scale} "
          f"(n={snapshot['workload']['length']}, "
          f"w={snapshot['parameters']['window']}, "
          f"batch={snapshot['parameters']['batch_size']})")
    for entry in snapshot["policies"]:
        floor = (f">= {snapshot['parameters']['min_policy_speedup']:.1f}x floor"
                 if entry["floor_enforced"] else "advisory")
        print(f"  {entry['policy']:<5} per-tuple "
              f"{entry['serial_ktuples_per_second']:>8.2f} k-tuples/s  "
              f"batched {entry['batched_ktuples_per_second']:>8.2f} k-tuples/s  "
              f"({entry['speedup']:.2f}x, {floor})")
    print(f"  batched_identical={snapshot['batched_identical']}")
    for line in snapshot["mismatches"]:
        print(f"  MISMATCH: {line}")
    for line in snapshot["floor_failures"]:
        print(f"  FLOOR: {line}")
    print(f"written to {path}")
    ok = snapshot["batched_identical"] and not snapshot["floor_failures"]
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
