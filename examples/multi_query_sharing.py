"""Multiple joins sharing stream queues (the paper's Section 6 outlook).

Two continuous queries join the same two streams on *different*
attributes — say, network flows joined by source subnet for one dashboard
and by destination port for another.  The input queues are shared; the
CPU serves only half the arrival rate.  Queue shedding can ignore values
(drop newest/random) or aggregate both queries' statistics modules and
shed the tuple least valuable to either query.

Run:  python examples/multi_query_sharing.py [--service N]
"""

from __future__ import annotations

import argparse

from repro.core.multiquery import QuerySpec, SharedQueueSystem
from repro.streams import multi_attribute_pair


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--length", type=int, default=4000)
    parser.add_argument("--window", type=int, default=120)
    parser.add_argument(
        "--service", type=int, default=2,
        help="operator-tuple deliveries per tick (2 queries need 4)",
    )
    parser.add_argument("--seed", type=int, default=13)
    args = parser.parse_args()

    window = args.window
    pair = multi_attribute_pair(
        args.length, domain_sizes=[50, 20], skews=[1.2, 0.8], seed=args.seed
    )
    half = max(2, (window // 2) & ~1)
    full = max(2, window & ~1)
    queries = [
        QuerySpec("by-subnet", attribute=0, window=window, memory=half),
        QuerySpec("by-port", attribute=1, window=2 * window, memory=full),
    ]

    print(f"two joins over shared streams, {args.length} tuples each")
    print(f"service {args.service}/tick vs {2 * len(queries)} needed "
          f"({100 * args.service / (2 * len(queries)):.0f}% serviceable)\n")

    print(f"{'shed rule':<10} {'by-subnet':>10} {'by-port':>9} {'total':>8} {'shed':>7}")
    print("-" * 48)
    for rule in ("tail", "random", "max", "sum"):
        system = SharedQueueSystem(
            pair,
            queries,
            service_per_tick=args.service,
            queue_capacity=window // 4,
            shed_rule=rule,
            warmup=2 * window,
            seed=args.seed,
        )
        result = system.run()
        print(
            f"{rule:<10} {result.outputs['by-subnet']:>10} "
            f"{result.outputs['by-port']:>9} {result.total_output:>8} "
            f"{result.shed_from_queue:>7}"
        )

    print(
        "\naggregating the queries' statistics ('max'/'sum') sheds tuples no "
        "query values,\nlifting total output without starving either query."
    )


if __name__ == "__main__":
    main()
