"""Slow-CPU queue shedding (the paper's modular model, Section 2.1).

Bursty arrivals exceed the join's service rate, so the input queue
overflows and tuples must be shed before ever reaching the operator.
Compares value-oblivious shedding (drop newest / drop random) with
semantic shedding (drop the tuple least likely to find a partner).

Run:  python examples/slow_cpu_shedding.py [--service N]
"""

from __future__ import annotations

import argparse

from repro import SlowCpuConfig, SlowCpuEngine, make_policy_spec, zipf_pair
from repro.experiments import estimators_for
from repro.streams import clip_schedule, poisson_schedule


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--length", type=int, default=3000)
    parser.add_argument("--window", type=int, default=100)
    parser.add_argument("--rate", type=float, default=1.0, help="arrivals/tick/stream")
    parser.add_argument("--service", type=int, default=1, help="tuples served/tick")
    parser.add_argument("--seed", type=int, default=9)
    args = parser.parse_args()

    pair = zipf_pair(args.length, domain_size=50, skew=1.0, seed=args.seed)
    estimators = estimators_for(pair)
    r_schedule = clip_schedule(
        poisson_schedule(args.length, args.rate, seed=args.seed + 1), args.length
    )
    s_schedule = clip_schedule(
        poisson_schedule(args.length, args.rate, seed=args.seed + 2), args.length
    )
    arrivals = sum(r_schedule) + sum(s_schedule)
    capacity = args.service * args.length
    print(
        f"{arrivals} arrivals vs. service capacity {capacity} "
        f"({100 * min(1.0, capacity / arrivals):.0f}% serviceable)\n"
    )

    print(f"{'queue policy':<14} {'output':>8} {'shed':>7} {'expired':>8} {'max queue':>10}")
    print("-" * 52)
    for queue_policy in ("tail", "random", "prob"):
        config = SlowCpuConfig(
            window=args.window,
            memory=args.window,
            service_per_tick=args.service,
            queue_capacity=args.window // 4,
            queue_policy=queue_policy,
            seed=args.seed,
        )
        engine = SlowCpuEngine(
            config,
            policy=make_policy_spec(
                "PROB", estimators=estimators, window=args.window, seed=args.seed
            ),
            estimators=estimators,
        )
        result = engine.run(pair.r, pair.s, r_schedule, s_schedule)
        print(
            f"{queue_policy:<14} {result.output_count:>8} "
            f"{result.shed_from_queue:>7} {result.expired_in_queue:>8} "
            f"{result.max_queue_length:>10}"
        )

    print(
        "\nsemantic ('prob') queue shedding keeps the tuples most likely to "
        "find partners,\nproducing more output from the same service budget."
    )


if __name__ == "__main__":
    main()
