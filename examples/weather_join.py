"""Weather-sensor stream join (the paper's Section 4.5 scenario).

Joins two "years" of synthetic cloud reports on their 10-degree grid
cell to pair up readings from sensors in the same region at nearby
times, comparing random shedding with PROB and PROBV under a memory
budget, and showing PROBV's memory split staying near 50/50.

Run:  python examples/weather_join.py [--length N]
"""

from __future__ import annotations

import argparse

from repro import run_algorithm, weather_pair
from repro.experiments import estimators_for
from repro.streams import GridCell, weather_records


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--length", type=int, default=20_000, help="reports per year")
    parser.add_argument("--window", type=int, default=500)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    window = args.window
    warmup = 2 * window
    memory = window  # 50% of what an exact join needs
    pair = weather_pair(args.length, seed=args.seed)
    estimators = estimators_for(pair)

    print(f"joining two years of {len(pair)} cloud reports on grid cell")
    print(f"window {window}, memory {memory} (exact needs {2 * window})\n")

    exact = run_algorithm("EXACT", pair, window, 0, warmup=warmup)
    print(f"{'algorithm':<8} {'matched pairs':>14} {'% of exact':>11}")
    print("-" * 36)
    for name in ("RAND", "PROB", "PROBV"):
        result = run_algorithm(
            name, pair, window, memory, warmup=warmup,
            estimators=estimators, seed=args.seed,
        )
        fraction = 100 * result.output_count / max(exact.output_count, 1)
        print(f"{name:<8} {result.output_count:>14} {fraction:>10.1f}%")
    print(f"{'EXACT':<8} {exact.output_count:>14} {100.0:>10.1f}%")

    # Figure 8: PROBV's memory allocation stays near 50/50 because the two
    # years' report distributions are nearly identical.
    probv = run_algorithm(
        "PROBV", pair, window, memory, warmup=warmup, estimators=estimators,
        track_shares=True, share_sample_every=max(1, len(pair) // 10),
    )
    print("\nPROBV memory split over time (R share):")
    for t, fraction in probv.share_fraction_r():
        bar = "#" * int(round(40 * fraction))
        print(f"  t={t:>7}  {fraction:5.2f}  {bar}")

    # Materialise a few concrete matches with full payload records.
    sample = run_algorithm(
        "PROB", pair.prefix(3 * window), window, memory,
        warmup=warmup, estimators=estimators, materialize=True,
    )
    year1 = list(weather_records(pair.r[: 3 * window], seed=args.seed))
    year2 = list(weather_records(pair.s[: 3 * window], seed=args.seed + 1))
    print(f"\nsample matched reports ({min(len(sample.pairs), 3)} of {len(sample.pairs)}):")
    for match in sample.pairs[:3]:
        cell = GridCell(int(match.key))
        a = year1[match.r_arrival]
        b = year2[match.s_arrival]
        print(
            f"  cell ({cell.latitude:+05.1f}, {cell.longitude:+06.1f}): "
            f"1985 t={match.r_arrival} cover={a['cloud_cover_octas']}/8  <->  "
            f"1986 t={match.s_arrival} cover={b['cloud_cover_octas']}/8"
        )


if __name__ == "__main__":
    main()
