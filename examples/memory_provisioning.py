"""Memory provisioning with the OPT value curve.

The paper's introduction motivates load shedding with the impossibility
of sizing a stream system for peak load.  The flip side is a sizing
question this library can answer exactly: given a recorded (or forecast)
workload, how much join memory buys how much of the result?  OPT-offline
over a memory grid yields the concave value curve; its marginal values
show where additional memory stops paying.

Run:  python examples/memory_provisioning.py [--target 0.9]
"""

from __future__ import annotations

import argparse

from repro import zipf_pair
from repro.core.offline import memory_value_curve
from repro.experiments import run_algorithm


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--length", type=int, default=1600)
    parser.add_argument("--window", type=int, default=80)
    parser.add_argument("--skew", type=float, default=1.0)
    parser.add_argument(
        "--target", type=float, default=0.9,
        help="fraction of the exact result to provision for",
    )
    parser.add_argument("--seed", type=int, default=21)
    args = parser.parse_args()

    window = args.window
    pair = zipf_pair(args.length, domain_size=50, skew=args.skew, seed=args.seed)
    memories = [max(2, int(window * f) // 2 * 2) for f in (0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0)]

    print(f"workload: {pair.name}, w={window} (exact join needs M={2 * window})\n")
    curve = memory_value_curve(pair, window, memories)
    marginals = curve.marginal_values()

    print(f"{'M':>5} {'OPT output':>11} {'% of exact':>11} {'marginal/slot':>14}")
    print("-" * 45)
    for index, point in enumerate(curve.points):
        marginal = f"{marginals[index - 1]:.2f}" if index else ""
        print(
            f"{point.memory:>5} {point.output:>11} "
            f"{100 * point.fraction_of_exact:>10.1f}% {marginal:>14}"
        )

    budget = curve.smallest_budget_reaching(args.target)
    if budget is None:
        print(f"\nno measured budget reaches {100 * args.target:.0f}% of exact")
        return
    print(
        f"\nsmallest measured budget reaching {100 * args.target:.0f}% of the "
        f"exact result: M = {budget} ({100 * budget / (2 * window):.0f}% of the "
        f"exact join's requirement)"
    )

    # How close does the online heuristic come at that budget?
    prob = run_algorithm("PROB", pair, window, budget, seed=args.seed)
    opt_at_budget = next(p.output for p in curve.points if p.memory == budget)
    print(
        f"at M = {budget}, online PROB achieves {prob.output_count} "
        f"({100 * prob.output_count / max(opt_at_budget, 1):.1f}% of OPT's "
        f"{opt_at_budget}) — the paper's 'PROB tracks OPT' in provisioning terms."
    )


if __name__ == "__main__":
    main()
