"""Sensor-network static join (the paper's Section 3.1 scenario).

Battery-powered sensors each hold a relation of measurements; a proxy
wants their equi-join but every transmitted tuple costs battery.  Each
sensor ships only a compact value histogram; the proxy runs the optimal
retention DP on the Kurotowski components to decide exactly which tuples
to request so that the truncated join is as large as possible under the
transmission budget.

Run:  python examples/sensor_proxy.py [--budget-fraction F]
"""

from __future__ import annotations

import argparse
from collections import Counter

import numpy as np

from repro import extract_components, max_edges_retaining
from repro.core.static_join import (
    greedy_min_degree_deletion,
    random_deletion,
    total_edges,
    total_nodes,
)


def simulate_sensor(readings: int, hot_values: list[int], seed: int) -> list[int]:
    """A sensor's measurement relation: clustered around hot values."""
    rng = np.random.default_rng(seed)
    hot = rng.choice(hot_values, size=int(readings * 0.7))
    cold = rng.integers(0, 100, size=readings - len(hot))
    values = np.concatenate([hot, cold]).astype(int)
    rng.shuffle(values)
    return values.tolist()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--readings", type=int, default=400, help="tuples per sensor")
    parser.add_argument(
        "--budget-fraction",
        type=float,
        default=0.5,
        help="fraction of all tuples the sensors may transmit",
    )
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    # Two sensors observing overlapping phenomena.
    sensor_a = simulate_sensor(args.readings, hot_values=[5, 17, 42], seed=args.seed)
    sensor_b = simulate_sensor(args.readings, hot_values=[17, 42, 63], seed=args.seed + 1)

    # Each sensor transmits only its value histogram (tiny) to the proxy.
    histogram_a = Counter(sensor_a)
    histogram_b = Counter(sensor_b)
    print(f"sensor A: {len(sensor_a)} tuples, histogram of {len(histogram_a)} values")
    print(f"sensor B: {len(sensor_b)} tuples, histogram of {len(histogram_b)} values")

    # The proxy reconstructs the join components from the histograms alone.
    components = extract_components(
        list(histogram_a.elements()), list(histogram_b.elements())
    )
    nodes = total_nodes(components)
    full_join = total_edges(components)
    budget = int(nodes * args.budget_fraction)
    print(f"\nfull join would produce {full_join} result tuples")
    print(f"transmission budget: {budget} of {nodes} tuples\n")

    optimal = max_edges_retaining(components, budget)
    greedy = greedy_min_degree_deletion(components, nodes - budget)
    random_plan = random_deletion(components, nodes - budget, seed=args.seed)

    print(f"{'strategy':<22} {'join tuples':>12} {'% of full':>10}")
    print("-" * 46)
    for label, plan in (
        ("optimal DP (paper)", optimal),
        ("greedy min-degree", greedy),
        ("random selection", random_plan),
    ):
        print(
            f"{label:<22} {plan.retained_edges:>12} "
            f"{100 * plan.retained_edges / max(full_join, 1):>9.1f}%"
        )

    # The proxy now knows per join value how many tuples to request.
    print("\nper-value transmission plan (optimal, top 5 by benefit):")
    ranked = sorted(
        zip(components, optimal.per_component),
        key=lambda item: item[1][0] * item[1][1],
        reverse=True,
    )[:5]
    for component, (keep_a, keep_b) in ranked:
        print(
            f"  value {component.key!r:>4}: request {keep_a}/{component.m} "
            f"from A, {keep_b}/{component.n} from B  "
            f"-> {keep_a * keep_b} join tuples"
        )


if __name__ == "__main__":
    main()
