"""Semantic load smoothing with an archive (day/night processing).

The paper's retail scenario: during peak load the join sheds tuples and
produces an approximate result in real time; everything is also written
to an archive.  At night, the system revisits the *incomplete* tuples
(the Archive-metric population), fetches their partners from the archive,
and emits exactly the missing output — the final result is exact, load
was deferred rather than lost.

Run:  python examples/archive_smoothing.py [--memory-fraction F]
"""

from __future__ import annotations

import argparse

from repro import archive_metric, refine_from_archive, run_algorithm, zipf_pair
from repro.core.exact import run_exact


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--length", type=int, default=3000)
    parser.add_argument("--window", type=int, default=150)
    parser.add_argument(
        "--memory-fraction", type=float, default=0.25,
        help="daytime memory as a fraction of the window",
    )
    parser.add_argument("--seed", type=int, default=5)
    args = parser.parse_args()

    window = args.window
    memory = max(2, int(window * args.memory_fraction) // 2 * 2)
    pair = zipf_pair(args.length, domain_size=50, skew=1.0, seed=args.seed)

    print("DAY MODE (peak load, shedding with PROB)")
    day = run_algorithm(
        "PROB", pair, window, memory, materialize=True, track_survival=True
    )
    exact = run_exact(pair, window, materialize=True)
    print(f"  produced {day.output_count} of {exact.output_count} result tuples "
          f"({100 * day.output_count / max(exact.output_count, 1):.1f}%) "
          f"with M={memory} (exact needs {2 * window})")

    report = archive_metric(
        pair, day.r_departures, day.s_departures, window, count_from=day.warmup
    )
    print(f"  Archive-metric: {report.arm} incomplete tuples "
          f"({100 * report.incomplete_fraction:.1f}% of arrivals) "
          f"[R: {report.incomplete_r}, S: {report.incomplete_s}]")

    print("\nNIGHT MODE (refining from the archive)")
    night = refine_from_archive(pair, day)
    print(f"  recovered {night.missing_count} missing result tuples")
    print(f"  archive work: {night.archive_reads} tuple reads for "
          f"{night.incomplete_tuples} incomplete tuples")

    combined = day.output_count + night.missing_count
    print("\nVERIFICATION")
    print(f"  day output + night refinement = {combined}")
    print(f"  exact join size               = {exact.output_count}")
    status = "exact result recovered" if combined == exact.output_count else "MISMATCH!"
    print(f"  => {status}")

    produced = {(p.r_arrival, p.s_arrival) for p in day.pairs}
    missing = {(p.r_arrival, p.s_arrival) for p in night.missing_pairs}
    expected = {(p.r_arrival, p.s_arrival) for p in exact.pairs}
    assert produced | missing == expected and produced.isdisjoint(missing)
    print("  pair-level check passed: day ∪ night = exact, disjoint")


if __name__ == "__main__":
    main()
