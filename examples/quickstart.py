"""Quickstart: approximate a sliding-window stream join under memory pressure.

Generates two skewed streams, runs the exact join, random shedding
(RAND), semantic shedding (PROB), and the optimal offline schedule (OPT)
with only a quarter of the memory an exact join needs, and compares their
output sizes — the paper's headline experiment in miniature.  Everything
goes through the unified :mod:`repro.api` surface: one
:class:`~repro.api.RunSpec`, :func:`~repro.api.compare`, and the
per-result :meth:`~repro.core.results.BaseRunResult.summary`.

Run:  python examples/quickstart.py [--length N] [--window W]
"""

from __future__ import annotations

import argparse

from repro import RunSpec, build_pair, compare, exact_join_size


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--length", type=int, default=2000, help="tuples per stream")
    parser.add_argument("--window", type=int, default=100, help="window size w")
    parser.add_argument("--skew", type=float, default=1.0, help="Zipf parameter")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    window = args.window
    memory = max(2, (window // 2) & ~1)  # ~25% of the 2w an exact join needs
    spec = RunSpec(
        algorithm="RAND",
        window=window,
        memory=memory,
        length=args.length,
        skew=args.skew,
        seed=args.seed,
    )
    pair = build_pair(spec)

    print(f"workload : {pair.name}, {len(pair)} tuples/stream")
    print(f"window   : {window} (exact join needs M = {2 * window})")
    print(f"memory   : {memory} tuples\n")

    exact = exact_join_size(pair, window, count_from=2 * window)
    results = compare([spec, "LIFE", "PROB", "OPT"], pair=pair)

    print(f"{'algorithm':<10} {'output':>8} {'% of exact':>11}")
    print("-" * 31)
    for name, result in results.items():
        fraction = 100.0 * result.output_count / max(exact, 1)
        print(f"{name:<10} {result.output_count:>8} {fraction:>10.1f}%")
    print(f"{'EXACT':<10} {exact:>8} {100.0:>10.1f}%")

    prob = results["PROB"].output_count
    rand = results["RAND"].output_count
    opt = results["OPT"].output_count
    print(
        f"\nsemantic shedding (PROB) produced {prob / max(rand, 1):.2f}x the "
        f"output of random shedding,\nreaching "
        f"{100 * prob / max(opt, 1):.1f}% of the offline optimum (OPT)."
    )


if __name__ == "__main__":
    main()
