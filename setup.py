"""Setuptools shim.

Metadata lives in pyproject.toml; this file exists so the package can be
installed editable in offline environments whose setuptools lacks PEP 660
support (no `wheel` package available).
"""

from setuptools import setup

setup()
